//! The XMark-like auction-site document generator.

use crate::text;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use whirlpool_xml::{Document, DocumentBuilder};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Approximate serialized size to produce, in bytes. The generator
    /// stops opening new items once the running size estimate passes the
    /// target (the estimate tracks actual serialized size within a few
    /// percent, like XMark's own nominal scale factors).
    pub target_bytes: usize,
    /// RNG seed; equal configs generate identical documents.
    pub seed: u64,
    /// Hard cap on generated items, mostly for tests. `None` = until
    /// `target_bytes`.
    pub max_items: Option<usize>,
}

impl GeneratorConfig {
    /// A document of approximately `mb` megabytes (the paper uses 1, 10
    /// and 50 Mb).
    pub fn megabytes(mb: usize) -> Self {
        GeneratorConfig {
            target_bytes: mb * 1_000_000,
            seed: 42,
            max_items: None,
        }
    }

    /// A tiny document with exactly `n` items, for tests.
    pub fn items(n: usize) -> Self {
        GeneratorConfig {
            target_bytes: usize::MAX,
            seed: 42,
            max_items: Some(n),
        }
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

/// Generates an XMark-like document per `config`.
pub fn generate(config: &GeneratorConfig) -> Document {
    let mut gen = Generator {
        rng: SmallRng::seed_from_u64(config.seed),
        builder: DocumentBuilder::new(),
        bytes: 0,
        item_counter: 0,
    };
    gen.site(config);
    gen.builder.finish()
}

struct Generator {
    rng: SmallRng,
    builder: DocumentBuilder,
    /// Running estimate of serialized size.
    bytes: usize,
    item_counter: usize,
}

impl Generator {
    fn open(&mut self, tag: &str) {
        self.builder.open(tag);
        self.bytes += 2 * tag.len() + 5; // "<t>" + "</t>"
    }

    fn close(&mut self) {
        self.builder.close();
    }

    fn text(&mut self, s: &str) {
        self.builder.text(s);
        self.bytes += s.len();
    }

    fn attr(&mut self, name: &str, value: &str) {
        self.builder.attribute(name, value);
        self.bytes += name.len() + value.len() + 4;
    }

    fn leaf(&mut self, tag: &str, value: &str) {
        self.open(tag);
        self.text(value);
        self.close();
    }

    fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    fn site(&mut self, config: &GeneratorConfig) {
        self.open("site");
        self.open("regions");
        let mut region_open: Option<usize> = None;
        loop {
            let over_target = self.bytes >= config.target_bytes;
            let over_items = config.max_items.is_some_and(|m| self.item_counter >= m);
            if over_target || over_items {
                break;
            }
            // Rotate through the six region containers every 20 items so
            // small documents still exercise several regions.
            let wanted = (self.item_counter / 20) % REGIONS.len();
            if region_open != Some(wanted) {
                if region_open.is_some() {
                    self.close();
                }
                self.open(REGIONS[wanted]);
                region_open = Some(wanted);
            }
            self.item();
        }
        if region_open.is_some() {
            self.close();
        }
        self.close(); // regions
        self.close(); // site
    }

    fn item(&mut self) {
        let id = self.item_counter;
        self.item_counter += 1;
        self.open("item");
        self.attr("id", &format!("item{id}"));

        let location = text::phrase(&mut self.rng, 1, 2);
        self.leaf("location", &location);
        let quantity = self.rng.gen_range(1..=5).to_string();
        self.leaf("quantity", &quantity);
        let name = text::phrase(&mut self.rng, 2, 4);
        self.leaf("name", &name);
        if self.chance(0.8) {
            let payment = text::phrase(&mut self.rng, 1, 3);
            self.leaf("payment", &payment);
        }

        self.description();

        if self.chance(0.5) {
            let shipping = text::phrase(&mut self.rng, 2, 4);
            self.leaf("shipping", &shipping);
        }

        // incategory is optional and repeatable: ~30% of items have none,
        // which is what makes leaf deletion on incategory meaningful.
        if self.chance(0.7) {
            let n = self.rng.gen_range(1..=3);
            for _ in 0..n {
                self.open("incategory");
                let cat = format!("category{}", self.rng.gen_range(0..100));
                self.attr("category", &cat);
                self.close();
            }
        }

        if self.chance(0.65) {
            self.mailbox();
        }

        self.close(); // item
    }

    fn description(&mut self) {
        self.open("description");
        if self.chance(0.55) {
            // Recursive variant: parlist as a direct child — the exact
            // match for Q1's ./description/parlist.
            self.parlist(0);
        } else {
            // Flat variant: only a text element; Q1 then needs leaf
            // deletion (no parlist anywhere) to keep the item.
            self.text_element(0);
        }
        self.close();
    }

    /// `parlist := listitem+`, `listitem := text | parlist` — the
    /// recursion (bounded at depth 3) that makes edge generalization
    /// productive: a nested parlist is a descendant, not a child, of
    /// `description`.
    fn parlist(&mut self, depth: usize) {
        self.open("parlist");
        let n = self.rng.gen_range(1..=3);
        for _ in 0..n {
            self.open("listitem");
            if depth < 3 && self.chance(0.35) {
                self.parlist(depth + 1);
            } else {
                self.text_element(depth);
            }
            self.close();
        }
        self.close();
    }

    fn mailbox(&mut self) {
        self.open("mailbox");
        let n = self.rng.gen_range(1..=4);
        for _ in 0..n {
            self.open("mail");
            let from = text::phrase(&mut self.rng, 1, 2);
            self.leaf("from", &from);
            let to = text::phrase(&mut self.rng, 1, 2);
            self.leaf("to", &to);
            let date = format!(
                "{:02}/{:02}/{}",
                self.rng.gen_range(1..=12),
                self.rng.gen_range(1..=28),
                self.rng.gen_range(1998..=2004)
            );
            self.leaf("date", &date);
            self.text_element(0);
            self.close();
        }
        self.close();
    }

    /// `text := (#PCDATA | bold | keyword | emph)*` — the shared element
    /// (it appears under `mail`, `description` and `listitem`) that makes
    /// subtree promotion productive.
    fn text_element(&mut self, depth: usize) {
        self.open("text");
        let body = text::phrase(&mut self.rng, 4, 14);
        self.text(&body);
        if self.chance(0.45) {
            self.markup("bold", depth);
        }
        if self.chance(0.45) {
            self.markup("keyword", depth);
        }
        if self.chance(0.25) {
            self.markup("emph", depth);
        }
        self.close();
    }

    fn markup(&mut self, tag: &str, depth: usize) {
        self.open(tag);
        let body = text::phrase(&mut self.rng, 1, 3);
        self.text(&body);
        // Occasional nesting (bold containing keyword etc.), as XMark's
        // DTD allows.
        if depth == 0 && self.chance(0.15) {
            let inner = match tag {
                "bold" => "keyword",
                "keyword" => "emph",
                _ => "bold",
            };
            self.open(inner);
            let body = text::phrase(&mut self.rng, 1, 2);
            self.text(&body);
            self.close();
        }
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::DocumentStats;

    #[test]
    fn deterministic() {
        let a = generate(&GeneratorConfig::items(50));
        let b = generate(&GeneratorConfig::items(50));
        let opts = whirlpool_xml::WriteOptions::default();
        assert_eq!(
            whirlpool_xml::write_document(&a, &opts),
            whirlpool_xml::write_document(&b, &opts)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig::items(50));
        let b = generate(&GeneratorConfig::items(50).with_seed(7));
        let opts = whirlpool_xml::WriteOptions::default();
        assert_ne!(
            whirlpool_xml::write_document(&a, &opts),
            whirlpool_xml::write_document(&b, &opts)
        );
    }

    #[test]
    fn hits_target_size_within_tolerance() {
        let config = GeneratorConfig {
            target_bytes: 200_000,
            seed: 1,
            max_items: None,
        };
        let doc = generate(&config);
        let stats = DocumentStats::compute(&doc);
        let actual = stats.serialized_bytes as f64;
        let target = config.target_bytes as f64;
        assert!(
            (actual - target).abs() / target < 0.1,
            "actual {actual} vs target {target}"
        );
    }

    #[test]
    fn contains_the_query_vocabulary() {
        let doc = generate(&GeneratorConfig::items(300));
        let stats = DocumentStats::compute(&doc);
        for tag in [
            "site",
            "regions",
            "item",
            "location",
            "quantity",
            "name",
            "payment",
            "description",
            "parlist",
            "listitem",
            "shipping",
            "incategory",
            "mailbox",
            "mail",
            "from",
            "to",
            "date",
            "text",
            "bold",
            "keyword",
        ] {
            assert!(stats.count_for(&doc, tag) > 0, "missing tag {tag}");
        }
        assert_eq!(stats.count_for(&doc, "item"), 300);
    }

    #[test]
    fn relaxation_opportunities_exist() {
        // The structural properties §6.2.1 relies on must be present.
        let doc = generate(&GeneratorConfig::items(500));

        let mut direct_parlist = 0usize; // exact Q1 matches
        let mut nested_parlist_only = 0usize; // need edge generalization
        let mut no_incategory = 0usize; // need leaf deletion (Q3)
        let item_tag = doc.tag_id("item").unwrap();
        let description_tag = doc.tag_id("description").unwrap();
        let parlist_tag = doc.tag_id("parlist").unwrap();
        let incategory_tag = doc.tag_id("incategory").unwrap();

        for id in doc.elements().filter(|&n| doc.tag(n) == item_tag) {
            let description = doc
                .children(id)
                .find(|&c| doc.tag(c) == description_tag)
                .expect("every item has a description");
            let direct = doc.children(description).any(|c| doc.tag(c) == parlist_tag);
            let any = doc
                .descendants_or_self(description)
                .skip(1)
                .any(|c| doc.tag(c) == parlist_tag);
            if direct {
                direct_parlist += 1;
            } else if any {
                nested_parlist_only += 1;
            }
            if !doc.children(id).any(|c| doc.tag(c) == incategory_tag) {
                no_incategory += 1;
            }
        }
        assert!(direct_parlist > 100, "direct parlists: {direct_parlist}");
        assert!(
            no_incategory > 50,
            "items without incategory: {no_incategory}"
        );
        // Nested-only parlists arise from the text|parlist listitem
        // choice; with the direct branch always rooted at description the
        // nested-only case cannot occur in this layout, so we instead
        // check nesting depth: some parlist must have a parlist ancestor.
        let mut nested_exists = false;
        for id in doc.elements().filter(|&n| doc.tag(n) == parlist_tag) {
            let mut cur = doc.parent(id);
            while let Some(p) = cur {
                if doc.tag(p) == parlist_tag {
                    nested_exists = true;
                    break;
                }
                cur = doc.parent(p);
            }
        }
        assert!(nested_exists, "no nested parlist found");
        let _ = nested_parlist_only;
    }

    #[test]
    fn q3_exact_and_partial_matches_exist() {
        let doc = generate(&GeneratorConfig::items(500));
        let item_tag = doc.tag_id("item").unwrap();
        let text_tag = doc.tag_id("text").unwrap();
        let bold_tag = doc.tag_id("bold").unwrap();
        let keyword_tag = doc.tag_id("keyword").unwrap();
        let mail_tag = doc.tag_id("mail").unwrap();

        let mut exact = 0usize;
        let mut partial = 0usize;
        for item in doc.elements().filter(|&n| doc.tag(n) == item_tag) {
            let mut has_both = false;
            let mut has_one = false;
            for n in doc.descendants_or_self(item) {
                if doc.tag(n) == text_tag && doc.parent(n).map(|p| doc.tag(p)) == Some(mail_tag) {
                    let b = doc.children(n).any(|c| doc.tag(c) == bold_tag);
                    let k = doc.children(n).any(|c| doc.tag(c) == keyword_tag);
                    has_both |= b && k;
                    has_one |= b ^ k;
                }
            }
            if has_both {
                exact += 1;
            } else if has_one {
                partial += 1;
            }
        }
        assert!(exact > 30, "exact: {exact}");
        assert!(partial > 30, "partial: {partial}");
    }
}
