//! The paper's running examples: the heterogeneous book collection of
//! Figure 1 and the Figure 3 "book (d)" with known predicate scores.

use whirlpool_xml::{Document, DocumentBuilder, NodeId};

/// Builds the Figure 1 database: three structurally heterogeneous books.
///
/// * Book (a): `book/title`, `book/info/{publisher/name, isbn}`,
///   `book/info/price` — matches Figure 2(a) exactly.
/// * Book (b): the publisher hangs under `book` directly (not under
///   `info`), the title holds a different location layout.
/// * Book (c): `title` is a descendant (under `reviews`), publisher
///   information is entirely missing.
pub fn heterogeneous_collection() -> Document {
    let mut b = DocumentBuilder::new();

    // Book (a): /book[./title='wodehouse' and ./info/publisher/name='psmith']
    b.open("book");
    b.leaf("title", "wodehouse");
    b.open("info");
    b.open("publisher");
    b.leaf("name", "psmith");
    b.leaf("location", "london");
    b.close(); // publisher
    b.leaf("isbn", "1234");
    b.leaf("price", "48.95");
    b.close(); // info
    b.close(); // book

    // Book (b): publisher directly under book (subtree promotion needed).
    b.open("book");
    b.leaf("title", "wodehouse");
    b.open("publisher");
    b.leaf("name", "psmith");
    b.close(); // publisher
    b.open("info");
    b.leaf("isbn", "1234");
    b.leaf("location", "london");
    b.leaf("price", "48.95");
    b.close(); // info
    b.close(); // book

    // Book (c): title nested under reviews (edge generalization needed),
    // publisher missing (leaf deletion needed).
    b.open("book");
    b.open("reviews");
    b.leaf("title", "wodehouse");
    b.close(); // reviews
    b.open("info");
    b.leaf("isbn", "1234");
    b.leaf("price", "48.95");
    b.close(); // info
    b.close(); // book

    b.finish()
}

/// The node handles of the Figure 3 example document: one book with
/// three `title` matches, five `location` matches and one `price` match.
#[derive(Debug, Clone)]
pub struct Figure3Nodes {
    /// The book (d) element — the query root match.
    pub book: NodeId,
    /// Its three `title` children, in score order.
    pub titles: Vec<NodeId>,
    /// Its five `location` children, in score order.
    pub locations: Vec<NodeId>,
    /// Its single `price` child.
    pub prices: Vec<NodeId>,
}

/// Per-node predicate scores of the Figure 3 example: "three exact
/// matches for title, each one of them with a score equal to 0.3, five
/// approximate matches for location where approximate scores are 0.3,
/// 0.2, 0.1, 0.1, and 0.1, and one exact match for price with score
/// 0.2."
pub const FIG3_TITLE_SCORES: [f64; 3] = [0.3, 0.3, 0.3];
/// Scores of the five approximate `location` matches.
pub const FIG3_LOCATION_SCORES: [f64; 5] = [0.3, 0.2, 0.1, 0.1, 0.1];
/// Score of the single exact `price` match.
pub const FIG3_PRICE_SCORES: [f64; 1] = [0.2];

/// Builds the Figure 3 "book (d)" document and returns the match nodes
/// in score order (pair them with the `FIG3_*_SCORES` constants).
pub fn figure3_document() -> (Document, Figure3Nodes) {
    let mut b = DocumentBuilder::new();
    let book = b.open("book");
    let titles: Vec<NodeId> = (0..3)
        .map(|i| b.leaf("title", &format!("title variant {i}")))
        .collect();
    let locations: Vec<NodeId> = (0..5)
        .map(|i| b.leaf("location", &format!("location variant {i}")))
        .collect();
    let prices = vec![b.leaf("price", "19.99")];
    b.close();
    let doc = b.finish();
    (
        doc,
        Figure3Nodes {
            book,
            titles,
            locations,
            prices,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::DocumentStats;

    #[test]
    fn collection_has_three_books() {
        let doc = heterogeneous_collection();
        let stats = DocumentStats::compute(&doc);
        assert_eq!(stats.count_for(&doc, "book"), 3);
        assert_eq!(stats.count_for(&doc, "title"), 3);
        assert_eq!(stats.count_for(&doc, "publisher"), 2);
        assert_eq!(stats.count_for(&doc, "price"), 3);
    }

    #[test]
    fn book_a_matches_fig2a_exactly() {
        // Structural sanity: in book (a), publisher is a child of info
        // which is a child of book, and title is a child of book.
        let doc = heterogeneous_collection();
        let book_tag = doc.tag_id("book").unwrap();
        let book_a = doc.elements().find(|&n| doc.tag(n) == book_tag).unwrap();
        let title = doc
            .children(book_a)
            .find(|&c| doc.tag_str(c) == "title")
            .unwrap();
        assert_eq!(doc.text(title), Some("wodehouse"));
        let info = doc
            .children(book_a)
            .find(|&c| doc.tag_str(c) == "info")
            .unwrap();
        let publisher = doc
            .children(info)
            .find(|&c| doc.tag_str(c) == "publisher")
            .unwrap();
        let name = doc
            .children(publisher)
            .find(|&c| doc.tag_str(c) == "name")
            .unwrap();
        assert_eq!(doc.text(name), Some("psmith"));
    }

    #[test]
    fn book_c_title_is_a_strict_descendant() {
        let doc = heterogeneous_collection();
        let book_tag = doc.tag_id("book").unwrap();
        let books: Vec<_> = doc.elements().filter(|&n| doc.tag(n) == book_tag).collect();
        let book_c = books[2];
        // No direct title child...
        assert!(doc.children(book_c).all(|c| doc.tag_str(c) != "title"));
        // ...but a title descendant.
        assert!(doc
            .descendants_or_self(book_c)
            .skip(1)
            .any(|n| doc.tag_str(n) == "title"));
        // And no publisher at all.
        assert!(doc
            .descendants_or_self(book_c)
            .all(|n| doc.tag_str(n) != "publisher"));
    }

    #[test]
    fn figure3_counts_match_the_paper() {
        let (doc, nodes) = figure3_document();
        assert_eq!(nodes.titles.len(), FIG3_TITLE_SCORES.len());
        assert_eq!(nodes.locations.len(), FIG3_LOCATION_SCORES.len());
        assert_eq!(nodes.prices.len(), FIG3_PRICE_SCORES.len());
        for &t in &nodes.titles {
            assert_eq!(doc.parent(t), Some(nodes.book));
        }
        // 3 * 5 * 1 = 15 combinations — the paper's "15 tuples in this
        // example".
        assert_eq!(
            nodes.titles.len() * nodes.locations.len() * nodes.prices.len(),
            15
        );
    }
}
