#![warn(missing_docs)]

//! Synthetic benchmark data for the Whirlpool experiments.
//!
//! The paper evaluates on documents produced by the XMark benchmark
//! generator and on three hand-made XPath queries over them. The XMark
//! tool itself is C code driven by a fixed DTD; this crate reimplements
//! the *relevant* part of that workload as a seeded synthetic generator:
//! an auction `site` with `item` elements whose substructure reproduces
//! the three properties the paper's relaxations rely on (§6.2.1):
//!
//! * **recursive nodes** (`parlist`/`listitem`) — enable *edge
//!   generalization* (a `parlist` may appear at any depth under
//!   `description`);
//! * **optional nodes** (`incategory`, `mailbox`, …) — enable *leaf
//!   deletion*;
//! * **shared nodes** (`text` appears under `mail`, `description` and
//!   `listitem`) — enable *subtree promotion*.
//!
//! [`generate`] produces documents of a requested serialized size
//! (1 Mb – 50 Mb in the paper) deterministically from a seed.
//!
//! The crate also ships the paper's running examples: the heterogeneous
//! book collection of Figure 1 ([`books`]) and the Figure 3 book with
//! known predicate scores.

pub mod bib;
pub mod books;
mod generator;
pub mod queries;
mod text;

pub use generator::{generate, GeneratorConfig};
