//! Host package for the repository-root `examples/` binaries.
//!
//! Run them with, e.g.:
//!
//! ```text
//! cargo run --release -p whirlpool-examples --example quickstart
//! cargo run --release -p whirlpool-examples --example book_search
//! cargo run --release -p whirlpool-examples --example auction_topk
//! cargo run --release -p whirlpool-examples --example relaxation_explorer
//! ```
