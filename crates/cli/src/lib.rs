//! The `whirlpool` command-line tool.
//!
//! ```text
//! whirlpool query <file.xml>... <query> [--k N] [--algorithm NAME] [--exact]
//!                 [--routing NAME] [--queue NAME] [--norm NAME] [--xml]
//!                 [--collection DIR] [--split N]
//! whirlpool generate <out.xml> [--mb N | --items N] [--seed S]
//! whirlpool stats <file.xml>
//! whirlpool relax <query> [--limit N]
//! whirlpool explain <file.xml> <query>
//! whirlpool serve <file.xml>... [--addr HOST:PORT] [--workers N]
//! whirlpool help
//! ```
//!
//! The library surface exists so the whole tool is unit-testable: every
//! command takes a writer and returns `Result`, and `main` is a thin
//! shim.

mod args;
mod commands;

pub use args::{ArgError, Parsed};

use std::io::Write;

/// Entry point shared by `main` and the tests.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut it = argv.iter().map(String::as_str);
    let command = it.next().unwrap_or("help");
    let rest: Vec<&str> = it.collect();
    match command {
        "query" => commands::query::run(&rest, out),
        "generate" => commands::generate::run(&rest, out),
        "index" => commands::index::run(&rest, out),
        "snapshot" => commands::snapshot::run(&rest, out),
        "stats" => commands::stats::run(&rest, out),
        "relax" => commands::relax::run(&rest, out),
        "explain" => commands::explain::run(&rest, out),
        "serve" => commands::serve::run(&rest, out),
        "help" | "--help" | "-h" => write!(out, "{}", HELP).map_err(CliError::from),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}; run `whirlpool help`"
        ))),
    }
}

pub const HELP: &str = "\
whirlpool — adaptive top-k XML query processor (ICDE 2005 reproduction)

USAGE:
  whirlpool query <file.xml>... <query> [options]  run a top-k query
                     (several files, or --collection DIR, query a
                     sharded corpus under one corpus-level idf model)
  whirlpool generate <out.xml> [options]         emit an XMark-like document
  whirlpool index <in.xml> <out.wpx>             precompile XML to a binary store
  whirlpool snapshot build <in.xml> <out.wps>    build a zero-copy index snapshot
  whirlpool snapshot verify <file.wps>           checksum + structural validation
  whirlpool snapshot info <file.wps>             what a snapshot holds
  whirlpool stats <file.xml>                     document statistics
  whirlpool relax <query> [--limit N]            show the relaxation space
  whirlpool explain <file.xml> <query>           compiled servers & weights
  whirlpool serve <file.xml>...                  run the HTTP query daemon
  whirlpool help                                 this text

QUERY OPTIONS:
  --k N              answers to return (default 10)
  --algorithm NAME   whirlpool-s | whirlpool-m | lockstep | noprune
                     (default whirlpool-s)
  --exact            exact matches only (no relaxation)
  --routing NAME     min-alive | max-score | min-score | static
                     (default min-alive)
  --queue NAME       max-final | max-next | current | fifo
                     (default max-final)
  --norm NAME        sparse | dense | none   (default sparse)
  --xml              print each answer's XML fragment
  --json             machine-readable output
  --stats            print robustness and pool counters
  --deadline-ms N    anytime budget: stop after N ms and return the
                     current top-k (tagged truncated, with a bound on
                     what any missing answer could score)
  --max-ops N        anytime budget: stop after N server operations
                     (deterministic, unlike --deadline-ms)
  --fault SPEC       inject server faults, e.g. server=2:panic@100
                     (kinds: panic@OPS | fail@OPS | delay@MICROS;
                     comma-separate to fault several servers)
  --fault-seed S     RNG seed for injected delays (default 0)
  --trace-out FILE   record a structured event trace and write it as
                     Chrome trace-event JSON (open in Perfetto or
                     chrome://tracing)
  --explain          print a routing/pruning summary: where matches
                     went, what the alternatives scored, how the
                     threshold grew
  --collection DIR   query every .xml/.wpx/.wps file in DIR as one
                     corpus (.wps snapshots attach zero-copy)
  --snapshot FILE    run against a prebuilt .wps snapshot: attach via
                     mmap instead of parsing + indexing (snapshot files
                     given as plain positionals attach automatically;
                     this flag also *requires* the file to be one)
  --split N          split a single document into N subtree shards and
                     query them as a collection
  --threads N        collection mode: shard-level worker threads
                     (single-document mode: Whirlpool-M workers)
  --no-shard-pruning collection mode: visit every shard, even ones whose
                     score ceiling cannot beat the global threshold
  --no-share-threshold
                     collection mode: do not seed shard runs with the
                     global k-th score
  (--fault/--trace-out/--explain are per-document and are rejected in
  collection mode)

GENERATE OPTIONS:
  --mb N             approximate serialized megabytes (default 1)
  --items N          exact item count (overrides --mb)
  --seed S           RNG seed (default 42)

SERVE OPTIONS:
  --addr HOST:PORT   bind address (default 127.0.0.1:7878)
  --workers N        query worker threads (default 4)
  --max-inflight N   admission token bucket (default 4)
  --queue-depth N    accepted connections awaiting a worker (default 8)
  --deadline-ms N    full-service deadline; the overload ladder shrinks
                     it under pressure (default 2000)
  --capacity-ops N   server-op spend considered affordable at zero load
                     (default 5000000)
  --retries N        re-runs after a transient server fault (default 1)
  --snapshot-dir DIR warm-start cache: boots attach fresh <stem>.wps
                     snapshots from DIR instead of parsing, and a
                     background thread writes snapshots for documents
                     that had to be parsed (plain .wps positionals
                     always attach zero-copy)
  Endpoints: GET /healthz, GET /metrics, POST /query with a JSON body
  {\"doc\": \"name\", \"query\": \"//a[./b]\", \"k\": 5, \"fault\": \"server=2:fail@10\"}
  (doc defaults to the only loaded document; documents are named by
  file stem). {\"collection\": true} queries every loaded document as
  one corpus (corpus-level idf, shard pruning; excludes \"doc\" and
  \"fault\"). Overloaded requests get 429 + Retry-After; degraded
  answers carry the anytime certificate.

Every command that reads a document accepts both XML files and binary
stores produced by `whirlpool index` (detected by content, not name).

QUERY SYNTAX (XPath subset):
  //item[./description/parlist and ./mailbox/mail/text]
  /book[.//title = 'wodehouse' and ./info/publisher/name = 'psmith']
  //item[@id = 'item3' and ./incategory[@category]]     (attributes)
  //item[./*/parlist]                                   (wildcards)
";

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    Usage(String),
    Io(std::io::Error),
    Parse(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Parse(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(argv: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let text = run_str(&["help"]).unwrap();
        assert!(text.contains("whirlpool query"));
        let default = run_str(&[]).unwrap();
        assert_eq!(text, default);
    }

    #[test]
    fn unknown_command_errors() {
        let err = run_str(&["frobnicate"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }
}
