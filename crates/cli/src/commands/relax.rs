//! `whirlpool relax` — show a query's relaxation space.

use crate::args::Parsed;
use crate::commands::load_query;
use crate::CliError;
use std::io::Write;
use whirlpool_pattern::relax::{applicable, apply, enumerate, fully_relaxed, Relaxation};

pub fn run(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &["limit"])?;
    let query_src = parsed.positional(0, "query")?.to_string();
    parsed.expect_positionals(1)?;
    let limit: usize = parsed.number("limit", 10_000)?;

    let query = load_query(&query_src)?;
    writeln!(out, "query:         {query}")?;
    writeln!(out, "fully relaxed: {}", fully_relaxed(&query))?;

    writeln!(out, "single-step relaxations:")?;
    for r in applicable(&query) {
        let relaxed = apply(&query, r).expect("applicable relaxation applies");
        let label = match r {
            Relaxation::EdgeGeneralization(q) => {
                format!("edge-generalization({})", query.node(q).tag)
            }
            Relaxation::LeafDeletion(q) => format!("leaf-deletion({})", query.node(q).tag),
            Relaxation::SubtreePromotion(q) => {
                format!("subtree-promotion({})", query.node(q).tag)
            }
        };
        writeln!(out, "  {label:<34} {relaxed}")?;
    }

    let closure = enumerate(&query, limit);
    if closure.len() >= limit {
        writeln!(out, "closure size:  > {limit} (truncated; raise --limit)")?;
    } else {
        writeln!(out, "closure size:  {}", closure.len())?;
    }
    Ok(())
}
