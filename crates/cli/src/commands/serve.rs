//! `whirlpool serve` — the long-lived query daemon.

use crate::args::Parsed;
use crate::commands::load_document;
use crate::CliError;
use std::io::Write;
use std::time::Duration;
use whirlpool_serve::{DocState, Registry, ServeConfig};

const VALUE_FLAGS: &[&str] = &[
    "addr",
    "workers",
    "max-inflight",
    "queue-depth",
    "deadline-ms",
    "capacity-ops",
    "retries",
];

/// Parses flags and documents; pulled out of `run` so the daemonless
/// half is unit-testable.
fn configure(argv: &[&str]) -> Result<(ServeConfig, Registry), CliError> {
    let parsed = Parsed::parse(argv, VALUE_FLAGS)?;
    if parsed.positional_len() == 0 {
        return Err(CliError::Usage(
            "serve needs at least one <file.xml> to load".into(),
        ));
    }

    let mut registry = Registry::new();
    for i in 0..parsed.positional_len() {
        let path = parsed.positional(i, "file.xml")?;
        let doc = load_document(path)?;
        // Clients address documents by file stem: `corpus/a.xml` → "a".
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path)
            .to_string();
        registry.insert(DocState::new(name, doc));
    }

    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: parsed.value("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: parsed.number("workers", defaults.workers)?,
        queue_depth: parsed.number("queue-depth", defaults.queue_depth)?,
        max_inflight: parsed.number("max-inflight", defaults.max_inflight)?,
        capacity_ops: parsed.number("capacity-ops", defaults.capacity_ops)?,
        base_deadline: Duration::from_millis(
            parsed.number("deadline-ms", defaults.base_deadline.as_millis() as u64)?,
        ),
        retries: parsed.number("retries", defaults.retries)?,
        ..defaults
    };
    Ok((config, registry))
}

pub fn run(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let (config, registry) = configure(argv)?;
    writeln!(
        out,
        "loaded {} document(s); listening on {} ({} workers, {} inflight, {}ms deadline)",
        registry.len(),
        config.addr,
        config.workers,
        config.max_inflight,
        config.base_deadline.as_millis(),
    )?;
    out.flush()?;
    whirlpool_serve::serve_blocking(config, registry)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_doc(dir: &std::path::Path, name: &str, xml: &str) -> String {
        let path = dir.join(name);
        std::fs::write(&path, xml).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn configure_loads_documents_and_flags() {
        let dir = std::env::temp_dir().join(format!("wp-serve-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = write_doc(&dir, "alpha.xml", "<r><a/></r>");
        let b = write_doc(&dir, "beta.xml", "<r><b/></r>");

        let (config, registry) = configure(&[
            &a,
            &b,
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--deadline-ms",
            "500",
        ])
        .unwrap();
        assert_eq!(registry.len(), 2);
        assert!(registry.get("alpha").is_some(), "named by file stem");
        assert!(registry.get("beta").is_some());
        assert_eq!(config.workers, 2);
        assert_eq!(config.base_deadline, Duration::from_millis(500));
        assert_eq!(config.addr, "127.0.0.1:0");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_without_documents_is_a_usage_error() {
        match configure(&[]) {
            Err(CliError::Usage(m)) => assert!(m.contains("file.xml"), "{m}"),
            Err(other) => panic!("wrong error class: {other:?}"),
            Ok(_) => panic!("no documents must not configure a daemon"),
        }
    }
}
