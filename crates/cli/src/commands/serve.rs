//! `whirlpool serve` — the long-lived query daemon.

use crate::args::Parsed;
use crate::commands::load_document;
use crate::CliError;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;
use whirlpool_serve::{DocState, Registry, ServeConfig};
use whirlpool_store::is_snapshot_version;

const VALUE_FLAGS: &[&str] = &[
    "addr",
    "workers",
    "max-inflight",
    "queue-depth",
    "deadline-ms",
    "capacity-ops",
    "retries",
    "snapshot-dir",
    "max-resident",
];

/// Clients address documents by file stem: `corpus/a.xml` → "a".
fn stem(path: &str) -> String {
    Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path)
        .to_string()
}

/// Loads one positional into a `DocState`, warmest path first:
///
/// 1. the file *is* a snapshot (any supported version) → attach it
///    zero-copy;
/// 2. `--snapshot-dir` holds a fresh `<stem>.wps` → *peek* it: only
///    the header and synopsis load at boot, the arrays attach on the
///    first query that needs them (stale ones — older than the source
///    — fall through to a parse, and the daemon's background
///    snapshotter rewrites them);
/// 3. otherwise parse + index (the cold path).
fn load_state(path: &str, snapshot_dir: Option<&Path>) -> Result<DocState, CliError> {
    if whirlpool_store::store_version(path).is_some_and(is_snapshot_version) {
        return DocState::attach(stem(path), path)
            .map_err(|e| CliError::Parse(format!("{path}: {e}")));
    }
    if let Some(dir) = snapshot_dir {
        let candidate = dir.join(format!("{}.wps", stem(path)));
        let fresh = match (
            std::fs::metadata(&candidate).and_then(|m| m.modified()),
            std::fs::metadata(path).and_then(|m| m.modified()),
        ) {
            (Ok(snap), Ok(src)) => snap >= src,
            _ => false,
        };
        if fresh {
            if let Ok(state) = DocState::peek(stem(path), &candidate) {
                return Ok(state);
            }
            // A corrupt or incompatible cached snapshot is not fatal —
            // fall through to the parse; the rewrite will replace it.
        }
    }
    Ok(DocState::new(stem(path), load_document(path)?))
}

/// Parses flags and documents; pulled out of `run` so the daemonless
/// half is unit-testable.
fn configure(argv: &[&str]) -> Result<(ServeConfig, Registry), CliError> {
    let parsed = Parsed::parse(argv, VALUE_FLAGS)?;
    if parsed.positional_len() == 0 {
        return Err(CliError::Usage(
            "serve needs at least one <file.xml> to load".into(),
        ));
    }
    let snapshot_dir: Option<PathBuf> = parsed.value("snapshot-dir").map(PathBuf::from);

    let mut registry = Registry::new();
    for i in 0..parsed.positional_len() {
        let path = parsed.positional(i, "file.xml")?;
        registry.insert(load_state(path, snapshot_dir.as_deref())?);
    }

    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: parsed.value("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: parsed.number("workers", defaults.workers)?,
        queue_depth: parsed.number("queue-depth", defaults.queue_depth)?,
        max_inflight: parsed.number("max-inflight", defaults.max_inflight)?,
        capacity_ops: parsed.number("capacity-ops", defaults.capacity_ops)?,
        base_deadline: Duration::from_millis(
            parsed.number("deadline-ms", defaults.base_deadline.as_millis() as u64)?,
        ),
        retries: parsed.number("retries", defaults.retries)?,
        snapshot_dir,
        max_resident: parsed.number("max-resident", defaults.max_resident)?,
        ..defaults
    };
    Ok((config, registry))
}

pub fn run(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let (config, registry) = configure(argv)?;
    let warm = registry.all().iter().filter(|d| d.is_snapshot()).count();
    writeln!(
        out,
        "loaded {} document(s) ({warm} warm-attached); listening on {} \
         ({} workers, {} inflight, {}ms deadline)",
        registry.len(),
        config.addr,
        config.workers,
        config.max_inflight,
        config.base_deadline.as_millis(),
    )?;
    out.flush()?;
    whirlpool_serve::serve_blocking(config, registry)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_doc(dir: &std::path::Path, name: &str, xml: &str) -> String {
        let path = dir.join(name);
        std::fs::write(&path, xml).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn configure_loads_documents_and_flags() {
        let dir = std::env::temp_dir().join(format!("wp-serve-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = write_doc(&dir, "alpha.xml", "<r><a/></r>");
        let b = write_doc(&dir, "beta.xml", "<r><b/></r>");

        let (config, registry) = configure(&[
            &a,
            &b,
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--deadline-ms",
            "500",
        ])
        .unwrap();
        assert_eq!(registry.len(), 2);
        assert!(registry.get("alpha").is_some(), "named by file stem");
        assert!(registry.get("beta").is_some());
        assert_eq!(config.workers, 2);
        assert_eq!(config.base_deadline, Duration::from_millis(500));
        assert_eq!(config.addr, "127.0.0.1:0");
        assert!(config.snapshot_dir.is_none());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_without_documents_is_a_usage_error() {
        match configure(&[]) {
            Err(CliError::Usage(m)) => assert!(m.contains("file.xml"), "{m}"),
            Err(other) => panic!("wrong error class: {other:?}"),
            Ok(_) => panic!("no documents must not configure a daemon"),
        }
    }

    #[test]
    fn snapshot_positionals_and_snapshot_dir_warm_start() {
        let dir = std::env::temp_dir().join(format!("wp-serve-warm-{}", std::process::id()));
        let cache = dir.join("snaps");
        std::fs::create_dir_all(&cache).unwrap();
        let xml = write_doc(
            &dir,
            "books.xml",
            "<shelf><book><title>dune</title></book></shelf>",
        );

        // A .wps positional attaches directly.
        let doc = crate::commands::load_document(&xml).unwrap();
        let index = whirlpool_index::TagIndex::build(&doc);
        let wps = dir.join("direct.wps");
        whirlpool_store::save_snapshot(&doc, &index, &wps).unwrap();
        let (_, registry) = configure(&[&wps.to_string_lossy()]).unwrap();
        let state = registry.get("direct").unwrap();
        assert!(state.is_snapshot(), "positional .wps must warm-attach");

        // Cold boot with --snapshot-dir: parsed (cache empty).
        let dir_flag = cache.to_string_lossy().into_owned();
        let (config, registry) = configure(&[&xml, "--snapshot-dir", &dir_flag]).unwrap();
        assert_eq!(config.snapshot_dir.as_deref(), Some(cache.as_path()));
        assert!(!registry.get("books").unwrap().is_snapshot());

        // Once the cache holds a fresh books.wps, the same boot warms —
        // lazily: only the synopsis loads until a query needs more.
        whirlpool_store::save_snapshot(&doc, &index, cache.join("books.wps")).unwrap();
        let (config, registry) =
            configure(&[&xml, "--snapshot-dir", &dir_flag, "--max-resident", "2"]).unwrap();
        assert_eq!(config.max_resident, 2);
        let state = registry.get("books").unwrap();
        assert!(state.is_snapshot(), "fresh cached snapshot counts warm");
        assert!(state.is_lazy(), "snapshot-dir snapshots load lazily");
        assert!(!state.is_resident(), "nothing attached before a query");
        assert_eq!(state.prepare.stat_name(), "snapshot_peek_ms");

        // A stale snapshot (source rewritten after it) is ignored.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let xml = write_doc(
            &dir,
            "books.xml",
            "<shelf><book><title>emma</title></book></shelf>",
        );
        let (_, registry) = configure(&[&xml, "--snapshot-dir", &dir_flag]).unwrap();
        assert!(
            !registry.get("books").unwrap().is_snapshot(),
            "stale snapshot must fall back to a parse"
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
