//! `whirlpool snapshot` — build, verify, and inspect index snapshots
//! (the zero-copy mmap format that lets `query` and `serve` attach to
//! a prebuilt corpus in milliseconds; v3 adds a stored path synopsis
//! for attach-free shard pruning).

use crate::args::Parsed;
use crate::commands::load_document;
use crate::CliError;
use std::io::Write;
use std::time::Instant;
use whirlpool_index::TagIndex;
use whirlpool_store::{AttachMode, Snapshot, SnapshotOptions};

pub fn run(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let action = argv.first().copied().unwrap_or("");
    let rest = &argv[1.min(argv.len())..];
    match action {
        "build" => build(rest, out),
        "verify" => verify(rest, out),
        "info" => info(rest, out),
        other => Err(CliError::Usage(format!(
            "snapshot: unknown action {other:?}; expected build, verify, or info"
        ))),
    }
}

/// `snapshot build <in.xml> <out.wps> [--no-path-synopsis]` — parse +
/// index once, write the flat-array snapshot that later runs attach
/// without rebuilding. The stored path synopsis (on by default) is
/// what lets lazy collections prune the shard without attaching it;
/// `--no-path-synopsis` writes the old v2 layout instead.
fn build(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &[])?;
    let input = parsed.positional(0, "in.xml")?.to_string();
    let output = parsed.positional(1, "out.wps")?.to_string();
    parsed.expect_positionals(2)?;
    let opts = SnapshotOptions {
        path_synopsis: !parsed.flag("no-path-synopsis"),
    };

    let start = Instant::now();
    let doc = load_document(&input)?;
    let index = TagIndex::build(&doc);
    let build_time = start.elapsed();

    let start = Instant::now();
    whirlpool_store::save_snapshot_with(&doc, &index, &output, &opts)
        .map_err(|e| CliError::Usage(format!("cannot write {output}: {e}")))?;
    let write_time = start.elapsed();

    let size = std::fs::metadata(&output).map(|m| m.len()).unwrap_or(0);
    writeln!(
        out,
        "snapshot {input} -> {output}: {} elements, {size} bytes \
         (parse+index {build_time:?}, write {write_time:?})",
        doc.len() - 1,
    )?;
    Ok(())
}

/// `snapshot verify <file.wps>` — full attach (checksum + structural
/// validation); exits non-zero on any corruption.
fn verify(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &[])?;
    let path = parsed.positional(0, "file.wps")?.to_string();
    parsed.expect_positionals(1)?;

    let start = Instant::now();
    // Read mode folds the checksum over every byte through a plain
    // read, so verification never reports "ok" off a stale page cache
    // mapping.
    let snapshot = Snapshot::attach_with(&path, AttachMode::Read)
        .map_err(|e| CliError::Parse(format!("{path}: {e}")))?;
    writeln!(
        out,
        "ok: {path} ({} elements, {} tags, {} bytes, verified in {:?})",
        snapshot.node_count() - 1,
        snapshot.tag_count(),
        snapshot.file_len(),
        start.elapsed(),
    )?;
    Ok(())
}

/// `snapshot info <file.wps>` — attach and report what the file holds
/// and how it was mapped.
fn info(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &[])?;
    let path = parsed.positional(0, "file.wps")?.to_string();
    parsed.expect_positionals(1)?;

    let start = Instant::now();
    let snapshot = Snapshot::attach(&path).map_err(|e| CliError::Parse(format!("{path}: {e}")))?;
    let attach = start.elapsed();
    let synopsis = snapshot.synopsis();
    writeln!(out, "snapshot:  {path}")?;
    writeln!(out, "version:   {}", snapshot.version())?;
    writeln!(out, "elements:  {}", snapshot.node_count() - 1)?;
    writeln!(out, "tags:      {}", snapshot.tag_count())?;
    writeln!(out, "bytes:     {}", snapshot.file_len())?;
    writeln!(
        out,
        "backing:   {}",
        if snapshot.is_mapped() {
            "mmap (zero-copy)"
        } else {
            "read (owned buffer)"
        }
    )?;
    writeln!(out, "attach:    {attach:?}")?;
    match snapshot.path_synopsis() {
        Some(ps) => writeln!(
            out,
            "paths:     {} stored (depth cap {}{})",
            ps.len(),
            ps.depth_cap(),
            if ps.truncated() {
                ", truncated — ceiling fallback to tag counts"
            } else {
                ""
            }
        )?,
        None => writeln!(out, "paths:     none (v2 file or --no-path-synopsis build)")?,
    }
    let mut tags: Vec<(&str, u64)> = synopsis.tags().collect();
    tags.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    writeln!(out, "top tags:")?;
    for (tag, count) in tags.into_iter().take(10) {
        writeln!(out, "  {count:>8}  {tag}")?;
    }
    Ok(())
}
