//! `whirlpool stats` — document statistics.

use crate::args::Parsed;
use crate::commands::load_document;
use crate::CliError;
use std::io::Write;
use whirlpool_xml::DocumentStats;

pub fn run(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &[])?;
    let file = parsed.positional(0, "file.xml")?.to_string();
    parsed.expect_positionals(1)?;

    let doc = load_document(&file)?;
    let stats = DocumentStats::compute(&doc);

    writeln!(out, "file:             {file}")?;
    writeln!(out, "elements:         {}", stats.element_count)?;
    writeln!(out, "distinct tags:    {}", stats.tag_counts.len())?;
    writeln!(out, "max depth:        {}", stats.max_depth)?;
    writeln!(out, "mean fanout:      {:.2}", stats.mean_fanout)?;
    writeln!(out, "text bytes:       {}", stats.text_bytes)?;
    writeln!(out, "serialized bytes: {}", stats.serialized_bytes)?;

    // Tag histogram, most frequent first, capped.
    let mut counts: Vec<(&str, usize)> = stats
        .tag_counts
        .iter()
        .map(|(&tag, &count)| (doc.tag_name(tag), count))
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    writeln!(out, "top tags:")?;
    for (tag, count) in counts.into_iter().take(15) {
        writeln!(out, "  {tag:<16} {count}")?;
    }
    Ok(())
}
