//! `whirlpool index` — precompile an XML file into the binary store
//! format so subsequent queries skip parsing.

use crate::args::Parsed;
use crate::commands::load_document;
use crate::CliError;
use std::io::Write;
use std::time::Instant;

pub fn run(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &[])?;
    let input = parsed.positional(0, "in.xml")?.to_string();
    let output = parsed.positional(1, "out.wpx")?.to_string();
    parsed.expect_positionals(2)?;

    let start = Instant::now();
    let doc = load_document(&input)?;
    let parse_time = start.elapsed();

    let start = Instant::now();
    whirlpool_store::save_file(&doc, &output)
        .map_err(|e| CliError::Usage(format!("cannot write {output}: {e}")))?;
    let write_time = start.elapsed();

    let size = std::fs::metadata(&output).map(|m| m.len()).unwrap_or(0);
    writeln!(
        out,
        "indexed {input} -> {output}: {} elements, {size} bytes \
         (parse {parse_time:?}, write {write_time:?})",
        doc.len() - 1,
    )?;
    Ok(())
}
