//! `whirlpool explain` — show how a query compiles against a document:
//! the per-server predicates (Algorithm 1), tf*idf weights, and sampled
//! selectivity estimates the router will use.

use crate::args::Parsed;
use crate::commands::{load_document, load_query};
use crate::CliError;
use std::io::Write;
use whirlpool_core::{ContextOptions, QueryContext};
use whirlpool_index::TagIndex;
use whirlpool_pattern::Direction;
use whirlpool_score::{Normalization, TfIdfModel};

pub fn run(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &[])?;
    let file = parsed.positional(0, "file.xml")?.to_string();
    let query_src = parsed.positional(1, "query")?.to_string();
    parsed.expect_positionals(2)?;

    let doc = load_document(&file)?;
    let query = load_query(&query_src)?;
    let index = TagIndex::build(&doc);
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
    let ctx = QueryContext::new(&doc, &index, &query, &model, ContextOptions::default());

    writeln!(out, "query:           {query}")?;
    writeln!(out, "root candidates: {}", ctx.root_candidates().len())?;
    writeln!(out)?;
    writeln!(
        out,
        "{:<12} {:<14} {:>8} {:>9} {:>9} {:>8} {:>7}",
        "server", "root pred", "w-exact", "w-relaxed", "fanout", "exact%", "empty%"
    )?;
    let root_tag = &query.node(query.root()).tag;
    for server in ctx.server_ids() {
        let spec = ctx.server_spec(server);
        let sel = ctx.selectivity_of(server);
        let [w_exact, w_relaxed] = model.weights(server);
        writeln!(
            out,
            "{:<12} {:<14} {:>8.3} {:>9.3} {:>9.2} {:>7.1}% {:>6.1}%",
            spec.tag,
            format!("{root_tag}{}{}", spec.root_exact.xpath(), spec.tag),
            w_exact,
            w_relaxed,
            sel.mean_candidates,
            100.0 * sel.exact_fraction,
            100.0 * sel.empty_fraction,
        )?;
    }

    writeln!(out)?;
    writeln!(
        out,
        "conditional predicate sequences (exact-mode join checks):"
    )?;
    for server in ctx.server_ids() {
        let spec = ctx.server_spec(server);
        if spec.conditional.is_empty() {
            continue;
        }
        write!(out, "  {:<12}", spec.tag)?;
        for cp in &spec.conditional {
            let other = &query.node(cp.other).tag;
            match cp.direction {
                Direction::FromAncestor => {
                    write!(out, " [{}{}{}]", other, cp.exact.xpath(), spec.tag)?
                }
                Direction::ToDescendant => {
                    write!(out, " [{}{}{}]", spec.tag, cp.exact.xpath(), other)?
                }
            }
        }
        writeln!(out)?;
    }
    Ok(())
}
