//! One module per subcommand.

pub mod explain;
pub mod generate;
pub mod index;
pub mod query;
pub mod relax;
pub mod serve;
pub mod snapshot;
pub mod stats;

use crate::CliError;
use whirlpool_pattern::{parse_pattern, TreePattern};
use whirlpool_xml::{parse_document, Document};

/// Loads a document: binary stores (see `whirlpool index`) are sniffed
/// by magic and loaded directly; anything else is parsed as XML.
pub(crate) fn load_document(path: &str) -> Result<Document, CliError> {
    if whirlpool_store::is_store_file(path) {
        return whirlpool_store::load_file(path)
            .map_err(|e| CliError::Parse(format!("{path}: {e}")));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    parse_document(&text).map_err(|e| CliError::Parse(format!("{path}: {e}")))
}

/// Parses a query string.
pub(crate) fn load_query(src: &str) -> Result<TreePattern, CliError> {
    parse_pattern(src).map_err(|e| CliError::Parse(format!("query {src:?}: {e}")))
}
