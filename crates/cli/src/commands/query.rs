//! `whirlpool query` — run a top-k query against a document or a
//! multi-document collection.

use crate::args::Parsed;
use crate::commands::{load_document, load_query};
use crate::CliError;
use std::io::Write;
use std::time::Duration;
use whirlpool_core::{
    evaluate_collection, evaluate_view, Algorithm, Collection, CollectionOptions, EvalOptions,
    FaultPlan, QueuePolicy, RelaxMode, RoutingStrategy,
};
use whirlpool_index::{DocView, TagIndex, TagIndexView};
use whirlpool_pattern::StaticPlan;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_store::{is_snapshot_version, Snapshot};
use whirlpool_xml::{Document, WriteOptions};

/// How the single-document path got its corpus: parsed + indexed in
/// memory, or attached zero-copy from a snapshot (v2 or v3).
#[allow(clippy::large_enum_variant)] // one per query invocation, never in bulk arrays
enum DocSource {
    Parsed {
        doc: Document,
        index: TagIndex,
        /// Parse + index + (elsewhere) model build, the cost a snapshot
        /// attach avoids.
        index_build_ms: f64,
    },
    Snapshot {
        snapshot: Snapshot,
        attach_ms: f64,
    },
}

impl DocSource {
    /// Opens `path`: snapshot files (v2 or v3) attach (mmap); anything
    /// else parses and indexes. `force_snapshot` (the `--snapshot`
    /// flag) rejects non-snapshot files instead of falling back.
    fn open(path: &str, force_snapshot: bool) -> Result<DocSource, CliError> {
        let is_snapshot = whirlpool_store::store_version(path).is_some_and(is_snapshot_version);
        if force_snapshot && !is_snapshot {
            return Err(CliError::Usage(format!(
                "--snapshot: {path} is not a snapshot \
                 (build one with `whirlpool snapshot build`)"
            )));
        }
        if is_snapshot {
            let start = std::time::Instant::now();
            let snapshot =
                Snapshot::attach(path).map_err(|e| CliError::Parse(format!("{path}: {e}")))?;
            Ok(DocSource::Snapshot {
                snapshot,
                attach_ms: start.elapsed().as_secs_f64() * 1e3,
            })
        } else {
            let start = std::time::Instant::now();
            let doc = load_document(path)?;
            let index = TagIndex::build(&doc);
            Ok(DocSource::Parsed {
                doc,
                index,
                index_build_ms: start.elapsed().as_secs_f64() * 1e3,
            })
        }
    }

    fn views(&self) -> (DocView<'_>, TagIndexView<'_>) {
        match self {
            DocSource::Parsed { doc, index, .. } => (doc.into(), index.view()),
            DocSource::Snapshot { snapshot, .. } => (snapshot.doc_view(), snapshot.index_view()),
        }
    }

    /// `("index_build_ms" | "snapshot_attach_ms", value)` — the stat
    /// the run pays at startup.
    fn prepare_stat(&self) -> (&'static str, f64) {
        match self {
            DocSource::Parsed { index_build_ms, .. } => ("index_build_ms", *index_build_ms),
            DocSource::Snapshot { attach_ms, .. } => ("snapshot_attach_ms", *attach_ms),
        }
    }
}

pub fn run(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(
        argv,
        &[
            "k",
            "algorithm",
            "routing",
            "queue",
            "norm",
            "batch",
            "deadline-ms",
            "max-ops",
            "fault",
            "fault-seed",
            "trace-out",
            "threads",
            "collection",
            "split",
            "snapshot",
            "max-resident",
        ],
    )?;
    // Positional shapes: `<file.xml> <query>` (single document, the
    // original form), `<file.xml>... <query>` (each file one shard), or
    // `--collection <dir> <query>` (every document in the directory).
    let collection_dir = parsed.value("collection").map(str::to_string);
    let snapshot_file = parsed.value("snapshot").map(str::to_string);
    if snapshot_file.is_some() && collection_dir.is_some() {
        return Err(CliError::Usage(
            "--snapshot names a single snapshot file; it cannot combine with \
             --collection (snapshot files in a collection directory attach \
             automatically)"
                .to_string(),
        ));
    }
    let (files, query_src) = if collection_dir.is_some() || snapshot_file.is_some() {
        (Vec::new(), parsed.positional(0, "query")?.to_string())
    } else {
        let n = parsed.positional_len();
        if n < 2 {
            // Reproduce the original error messages for the 0/1 cases.
            parsed.positional(0, "file.xml")?;
            parsed.positional(1, "query")?;
            unreachable!("positional() errors when missing");
        }
        let files: Vec<String> = (0..n - 1)
            .map(|i| parsed.positional(i, "file.xml").map(str::to_string))
            .collect::<Result<_, _>>()?;
        (files, parsed.positional(n - 1, "query")?.to_string())
    };
    if collection_dir.is_some() || snapshot_file.is_some() {
        parsed.expect_positionals(1)?;
    }
    let split: Option<usize> = parsed
        .value("split")
        .map(|v| {
            v.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| CliError::Usage(format!("--split: not a positive number: {v:?}")))
        })
        .transpose()?;
    let multi_doc =
        collection_dir.is_some() || files.len() > 1 || (split.is_some() && files.len() == 1);
    if split.is_some() && (collection_dir.is_some() || files.len() > 1) {
        return Err(CliError::Usage(
            "--split applies to a single document; it cannot combine with \
             --collection or multiple files"
                .to_string(),
        ));
    }
    if snapshot_file.is_some() && split.is_some() {
        return Err(CliError::Usage(
            "--split re-shards a parsed document; it cannot combine with \
             --snapshot"
                .to_string(),
        ));
    }

    let query = load_query(&query_src)?;

    let norm = match parsed.value("norm").unwrap_or("sparse") {
        "sparse" => Normalization::Sparse,
        "dense" => Normalization::Dense,
        "none" => Normalization::None,
        other => return Err(CliError::Usage(format!("--norm: unknown {other:?}"))),
    };

    let algorithm = match parsed.value("algorithm").unwrap_or("whirlpool-s") {
        "whirlpool-s" | "s" => Algorithm::WhirlpoolS,
        "whirlpool-m" | "m" => Algorithm::WhirlpoolM { processors: None },
        "lockstep" => Algorithm::LockStep,
        "noprune" | "lockstep-noprune" => Algorithm::LockStepNoPrune,
        other => return Err(CliError::Usage(format!("--algorithm: unknown {other:?}"))),
    };
    let routing = match parsed.value("routing").unwrap_or("min-alive") {
        "min-alive" => RoutingStrategy::MinAlive,
        "max-score" => RoutingStrategy::MaxScore,
        "min-score" => RoutingStrategy::MinScore,
        "static" => RoutingStrategy::Static(StaticPlan::in_id_order(query.server_ids().count())),
        other => return Err(CliError::Usage(format!("--routing: unknown {other:?}"))),
    };
    let queue = match parsed.value("queue").unwrap_or("max-final") {
        "max-final" => QueuePolicy::MaxFinalScore,
        "max-next" => QueuePolicy::MaxNextScore,
        "current" => QueuePolicy::CurrentScore,
        "fifo" => QueuePolicy::Fifo,
        other => return Err(CliError::Usage(format!("--queue: unknown {other:?}"))),
    };

    let deadline = parsed
        .value("deadline-ms")
        .map(|v| {
            v.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| CliError::Usage(format!("--deadline-ms: not a number: {v:?}")))
        })
        .transpose()?;
    let max_server_ops = parsed
        .value("max-ops")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("--max-ops: not a number: {v:?}")))
        })
        .transpose()?;
    let fault_seed: u64 = parsed.number("fault-seed", 0)?;
    let fault_plan = parsed
        .value("fault")
        .map(|spec| {
            FaultPlan::parse(spec, fault_seed).map_err(|e| CliError::Usage(format!("--fault: {e}")))
        })
        .transpose()?;

    let trace_out = parsed.value("trace-out").map(str::to_string);
    let explain = parsed.flag("explain");
    if (trace_out.is_some() || explain) && !whirlpool_core::trace::tracing_compiled() {
        return Err(CliError::Usage(
            "--trace-out/--explain need the `trace` cargo feature (build without \
             --no-default-features)"
                .to_string(),
        ));
    }

    let options = EvalOptions {
        k: parsed.number("k", 10)?,
        relax: if parsed.flag("exact") {
            RelaxMode::Exact
        } else {
            RelaxMode::Relaxed
        },
        routing,
        queue,
        op_cost: None,
        selectivity_sample: 64,
        router_batch: parsed.number("batch", 1)?,
        pooling: !parsed.flag("no-pool"),
        op_batching: !parsed.flag("no-op-batching"),
        deadline,
        max_server_ops,
        fault_plan,
        cancel: None,
        trace: trace_out.is_some() || explain,
        threads: {
            let threads: usize = parsed.number("threads", 1)?;
            if threads == 0 {
                return Err(CliError::Usage("--threads must be at least 1".to_string()));
            }
            threads
        },
        threshold_floor: 0.0,
        assist: None,
    };

    if multi_doc {
        if options.fault_plan.is_some() || trace_out.is_some() || explain {
            return Err(CliError::Usage(
                "--fault, --trace-out, and --explain are per-document features; \
                 they are not supported in collection mode"
                    .to_string(),
            ));
        }
        let collection = build_collection(collection_dir.as_deref(), &files, split)?;
        if let Some(max) = parsed.value("max-resident") {
            let max: usize = max
                .parse()
                .map_err(|_| CliError::Usage(format!("--max-resident: not a number: {max:?}")))?;
            collection.set_max_resident(max);
        }
        let copts = CollectionOptions {
            shard_pruning: !parsed.flag("no-shard-pruning"),
            share_threshold: !parsed.flag("no-share-threshold"),
            threads: options.threads,
        };
        return run_collection(
            out,
            &parsed,
            &collection,
            &query,
            &algorithm,
            &options,
            norm,
            &copts,
        );
    }

    let source = match &snapshot_file {
        Some(path) => DocSource::open(path, true)?,
        None => DocSource::open(&files[0], false)?,
    };
    let (doc, index) = source.views();
    let model = TfIdfModel::build_view(doc, index, &query, norm);

    let result = evaluate_view(doc, index, &query, &model, &algorithm, &options);

    if let (Some(path), Some(trace)) = (&trace_out, &result.trace) {
        let mut file = std::fs::File::create(path)
            .map_err(|e| CliError::Usage(format!("--trace-out {path}: {e}")))?;
        trace
            .write_chrome_trace(&mut file)
            .map_err(|e| CliError::Usage(format!("--trace-out {path}: {e}")))?;
    }

    if parsed.flag("json") {
        // --explain is a human-readable view; it is skipped in JSON
        // mode so the output stays machine-parseable.
        return write_json(out, doc, &source, &query, &algorithm, &result);
    }

    writeln!(out, "query:     {query}")?;
    writeln!(out, "algorithm: {}", algorithm.name())?;
    match result.completeness {
        whirlpool_core::Completeness::Exact => writeln!(out, "result:    exact")?,
        whirlpool_core::Completeness::Truncated {
            pending_matches,
            score_bound,
        } => writeln!(
            out,
            "result:    truncated ({pending_matches} matches unresolved, \
             no missing answer can score above {score_bound:.4})"
        )?,
    }
    writeln!(out, "answers:   {}", result.answers.len())?;
    for (rank, a) in result.answers.iter().enumerate() {
        write!(
            out,
            "  #{:<3} score {:<8.4} node {:?}",
            rank + 1,
            a.score.value(),
            a.root
        )?;
        if let Some(id) = doc.attribute(a.root, "id") {
            write!(out, "  id={id}")?;
        }
        writeln!(out)?;
        if parsed.flag("xml") {
            let xml = doc.write_node(
                a.root,
                &WriteOptions {
                    indent: Some(2),
                    declaration: false,
                },
            );
            for line in xml.lines() {
                writeln!(out, "      {line}")?;
            }
        }
    }
    writeln!(
        out,
        "work:      {} server ops ({} locate batches), {} comparisons, {} matches created, \
         {} pruned",
        result.metrics.server_ops,
        result.metrics.server_op_batches,
        result.metrics.predicate_comparisons,
        result.metrics.partials_created,
        result.metrics.pruned
    )?;
    writeln!(out, "elapsed:   {:?}", result.elapsed)?;
    if parsed.flag("stats") {
        let (stat, ms) = source.prepare_stat();
        writeln!(out, "prepare:   {stat} {ms:.3}")?;
        writeln!(
            out,
            "anytime:   {} deadline hits, {} servers failed, {} matches redistributed, {} answers degraded",
            result.metrics.deadline_hits,
            result.metrics.servers_failed,
            result.metrics.matches_redistributed,
            result.metrics.answers_degraded
        )?;
        writeln!(
            out,
            "pool:      {} buffers allocated, {} reused ({:.1}% hit rate)",
            result.metrics.buffers_allocated,
            result.metrics.buffers_reused,
            result.metrics.pool_hit_rate() * 100.0
        )?;
    }
    if explain {
        if let Some(trace) = &result.trace {
            write_explain(out, trace)?;
        }
    }
    Ok(())
}

/// Assembles the collection: every XML/store file in `--collection`'s
/// directory, the listed files (one shard each), or one document split
/// into `--split N` subtree shards.
fn build_collection(
    dir: Option<&str>,
    files: &[String],
    split: Option<usize>,
) -> Result<Collection, CliError> {
    let mut collection = Collection::new();
    if let Some(dir) = dir {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| CliError::Usage(format!("--collection {dir}: {e}")))?;
        let mut paths: Vec<std::path::PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.is_file()
                    && matches!(
                        p.extension().and_then(|e| e.to_str()),
                        Some("xml") | Some("wpx") | Some("wps")
                    )
            })
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(CliError::Usage(format!(
                "--collection {dir}: no .xml, .wpx, or .wps files found"
            )));
        }
        for path in paths {
            add_shard(&mut collection, &path.to_string_lossy())?;
        }
    } else if let Some(n) = split {
        let doc = load_document(&files[0])?;
        collection = Collection::split_document(&doc, n);
    } else {
        for file in files {
            add_shard(&mut collection, file)?;
        }
    }
    Ok(collection)
}

/// Adds one file to the collection: snapshots (v2 or v3) go in as lazy
/// shards — only their synopses are read until a query visits them —
/// anything else parses (or loads a v1 store) and indexes.
fn add_shard(collection: &mut Collection, path: &str) -> Result<(), CliError> {
    if whirlpool_store::store_version(path).is_some_and(is_snapshot_version) {
        return collection
            .attach_snapshot_file(path)
            .map_err(|e| CliError::Parse(format!("{path}: {e}")));
    }
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path)
        .to_string();
    collection.add_document(name, load_document(path)?);
    Ok(())
}

/// Runs and prints a collection query (the `--json` and human forms).
#[allow(clippy::too_many_arguments)] // the single-document path's locals, bundled
fn run_collection(
    out: &mut dyn Write,
    parsed: &Parsed,
    collection: &Collection,
    query: &whirlpool_pattern::TreePattern,
    algorithm: &Algorithm,
    options: &EvalOptions,
    norm: Normalization,
    copts: &CollectionOptions,
) -> Result<(), CliError> {
    let result = evaluate_collection(collection, query, algorithm, options, norm, copts);
    let cm = &result.collection_metrics;

    if parsed.flag("json") {
        return write_collection_json(out, collection, query, algorithm, &result);
    }

    writeln!(out, "query:      {query}")?;
    writeln!(out, "algorithm:  {}", algorithm.name())?;
    writeln!(
        out,
        "collection: {} shards ({} visited, {} pruned, {} budget-skipped)",
        cm.shards_total, cm.shards_visited, cm.shards_pruned, cm.shards_skipped_budget
    )?;
    if cm.shards_pruned_before_attach > 0 || cm.shards_attached > 0 || cm.shard_evictions > 0 {
        writeln!(
            out,
            "lazy:       {} pruned before attach, {} attached, {} evicted, {} assists",
            cm.shards_pruned_before_attach, cm.shards_attached, cm.shard_evictions, cm.assists
        )?;
    }
    match result.completeness {
        whirlpool_core::Completeness::Exact => writeln!(out, "result:     exact")?,
        whirlpool_core::Completeness::Truncated {
            pending_matches,
            score_bound,
        } => writeln!(
            out,
            "result:     truncated ({pending_matches} matches unresolved, \
             no missing answer can score above {score_bound:.4})"
        )?,
    }
    writeln!(out, "answers:    {}", result.answers.len())?;
    for (rank, a) in result.answers.iter().enumerate() {
        let shard = &collection.shards()[a.shard];
        write!(
            out,
            "  #{:<3} score {:<8.4} shard {:<12} node {:?}",
            rank + 1,
            a.score.value(),
            shard.name(),
            a.root
        )?;
        // acquire, not Shard::doc(): the answer's shard may be lazy
        // (and even evicted since its run) — re-attach on demand.
        let access = collection.acquire(a.shard).ok();
        if let Some(id) = access
            .as_ref()
            .and_then(|x| x.doc().attribute(a.root, "id"))
        {
            write!(out, "  id={id}")?;
        }
        writeln!(out)?;
        if parsed.flag("xml") {
            if let Some(access) = &access {
                let xml = access.doc().write_node(
                    a.root,
                    &WriteOptions {
                        indent: Some(2),
                        declaration: false,
                    },
                );
                for line in xml.lines() {
                    writeln!(out, "      {line}")?;
                }
            }
        }
    }
    writeln!(
        out,
        "work:       {} server ops ({} locate batches), {} comparisons, {} matches created, \
         {} pruned",
        result.metrics.server_ops,
        result.metrics.server_op_batches,
        result.metrics.predicate_comparisons,
        result.metrics.partials_created,
        result.metrics.pruned
    )?;
    writeln!(out, "elapsed:    {:?}", result.elapsed)?;
    Ok(())
}

/// JSON form of a collection run; answers carry their shard name.
fn write_collection_json(
    out: &mut dyn Write,
    collection: &Collection,
    query: &whirlpool_pattern::TreePattern,
    algorithm: &Algorithm,
    result: &whirlpool_core::CollectionResult,
) -> Result<(), CliError> {
    writeln!(out, "{{")?;
    writeln!(out, "  \"query\": \"{}\",", escape(&query.to_string()))?;
    writeln!(out, "  \"algorithm\": \"{}\",", algorithm.name())?;
    writeln!(out, "  \"result\": \"{}\",", result.completeness.label())?;
    if let whirlpool_core::Completeness::Truncated {
        pending_matches,
        score_bound,
    } = result.completeness
    {
        writeln!(out, "  \"pending_matches\": {pending_matches},")?;
        writeln!(out, "  \"score_bound\": {score_bound:.6},")?;
    }
    let cm = &result.collection_metrics;
    writeln!(
        out,
        "  \"collection\": {{\"shards_total\": {}, \"shards_visited\": {}, \
         \"shards_pruned\": {}, \"shards_pruned_before_attach\": {}, \
         \"shards_skipped_budget\": {}, \"shards_attached\": {}, \
         \"shard_evictions\": {}, \"assists\": {}}},",
        cm.shards_total,
        cm.shards_visited,
        cm.shards_pruned,
        cm.shards_pruned_before_attach,
        cm.shards_skipped_budget,
        cm.shards_attached,
        cm.shard_evictions,
        cm.assists
    )?;
    writeln!(
        out,
        "  \"elapsed_ms\": {:.3},",
        result.elapsed.as_secs_f64() * 1e3
    )?;
    let m = &result.metrics;
    writeln!(
        out,
        "  \"metrics\": {{\"server_ops\": {}, \"predicate_comparisons\": {}, \
         \"partials_created\": {}, \"pruned\": {}}},",
        m.server_ops, m.predicate_comparisons, m.partials_created, m.pruned
    )?;
    writeln!(out, "  \"answers\": [")?;
    for (i, a) in result.answers.iter().enumerate() {
        let comma = if i + 1 < result.answers.len() {
            ","
        } else {
            ""
        };
        let shard = &collection.shards()[a.shard];
        let id = collection
            .acquire(a.shard)
            .ok()
            .and_then(|x| x.doc().attribute(a.root, "id").map(str::to_string))
            .map(|v| format!(", \"id\": \"{}\"", escape(&v)))
            .unwrap_or_default();
        writeln!(
            out,
            "    {{\"rank\": {}, \"shard\": \"{}\", \"node\": {}, \"score\": {:.6}{id}}}{comma}",
            i + 1,
            escape(shard.name()),
            a.root.index(),
            a.score.value()
        )?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    Ok(())
}

/// Renders the `--explain` view: where the router sent matches and
/// why, how pruning went, and how the threshold grew.
fn write_explain(out: &mut dyn Write, trace: &whirlpool_core::TraceData) -> Result<(), CliError> {
    let s = trace.summary();
    writeln!(out, "explain:")?;
    writeln!(
        out,
        "  matches:   {} spawned = {} consumed + {} pruned + {} completed + {} abandoned{}",
        s.spawned,
        s.consumed,
        s.pruned,
        s.completed,
        s.abandoned,
        if s.balanced() { "" } else { "  (UNBALANCED)" }
    )?;
    if s.degraded_completions > 0 {
        writeln!(
            out,
            "  degraded:  {} answers completed past dead servers",
            s.degraded_completions
        )?;
    }
    writeln!(out, "  routing:   {} decisions", s.routed)?;
    for (server, st) in &s.per_server {
        writeln!(
            out,
            "    q{}: {} matches routed here, {} ops ({} extensions, mean {:.1}µs, max {}µs)",
            server.0,
            st.routed_to,
            st.ops,
            st.produced,
            st.mean_us(),
            st.max_us
        )?;
    }
    match (s.thresholds.first(), s.thresholds.last()) {
        (Some((_, first)), Some((_, last))) => {
            writeln!(
                out,
                "  threshold: {first:.4} -> {last:.4} over {} samples",
                s.thresholds.len()
            )?;
        }
        _ => writeln!(out, "  threshold: never sampled (no server operations)")?,
    }
    // A few concrete decisions, first and last, to show the adaptive
    // choice and what the alternatives scored.
    let explains: Vec<_> = trace.explains().collect();
    let shown: Vec<usize> = if explains.len() <= 4 {
        (0..explains.len()).collect()
    } else {
        vec![0, 1, explains.len() - 2, explains.len() - 1]
    };
    let mut last_printed = None;
    for i in shown {
        if last_printed == Some(i) {
            continue;
        }
        if let Some(prev) = last_printed {
            if i > prev + 1 {
                writeln!(out, "    ...")?;
            }
        }
        last_printed = Some(i);
        let x = explains[i];
        let chosen = match x.chosen {
            Some(q) => format!("q{}", q.0),
            None => "none (all dead)".to_string(),
        };
        let mut cands = String::new();
        for c in &x.candidates {
            if !cands.is_empty() {
                cands.push_str(", ");
            }
            cands.push_str(&format!(
                "q{}={:.3}{}",
                c.server.0,
                c.estimate,
                if c.eligible { "" } else { " (dead)" }
            ));
        }
        writeln!(
            out,
            "    match #{}: {} -> {chosen}  [{cands}] threshold {:.4}, queue {}{}",
            x.seq,
            x.strategy,
            x.threshold,
            x.queue_len,
            if x.group > 1 {
                format!(", group of {}", x.group)
            } else {
                String::new()
            }
        )?;
    }
    Ok(())
}

/// JSON string escaping shared by the two emitters below.
fn escape(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\t' => o.push_str("\\t"),
            '\r' => o.push_str("\\r"),
            c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
            c => o.push(c),
        }
    }
    o
}

/// Minimal JSON emitter (the approved dependency set has no serde_json;
/// the output shape is small and fully controlled here).
fn write_json(
    out: &mut dyn Write,
    doc: DocView<'_>,
    source: &DocSource,
    query: &whirlpool_pattern::TreePattern,
    algorithm: &Algorithm,
    result: &whirlpool_core::EvalResult,
) -> Result<(), CliError> {
    writeln!(out, "{{")?;
    writeln!(out, "  \"query\": \"{}\",", escape(&query.to_string()))?;
    writeln!(out, "  \"algorithm\": \"{}\",", algorithm.name())?;
    writeln!(out, "  \"result\": \"{}\",", result.completeness.label())?;
    let (stat, ms) = source.prepare_stat();
    writeln!(out, "  \"{stat}\": {ms:.3},")?;
    if let whirlpool_core::Completeness::Truncated {
        pending_matches,
        score_bound,
    } = result.completeness
    {
        writeln!(out, "  \"pending_matches\": {pending_matches},")?;
        writeln!(out, "  \"score_bound\": {score_bound:.6},")?;
    }
    writeln!(
        out,
        "  \"elapsed_ms\": {:.3},",
        result.elapsed.as_secs_f64() * 1e3
    )?;
    let m = &result.metrics;
    writeln!(
        out,
        "  \"metrics\": {{\"server_ops\": {}, \"server_op_batches\": {}, \"predicate_comparisons\": {},          \"partials_created\": {}, \"pruned\": {}, \"routing_decisions\": {},          \"deadline_hits\": {}, \"servers_failed\": {}, \"matches_redistributed\": {},          \"answers_degraded\": {}}},",
        m.server_ops, m.server_op_batches, m.predicate_comparisons, m.partials_created, m.pruned,
        m.routing_decisions, m.deadline_hits, m.servers_failed, m.matches_redistributed,
        m.answers_degraded
    )?;
    writeln!(out, "  \"answers\": [")?;
    for (i, a) in result.answers.iter().enumerate() {
        let comma = if i + 1 < result.answers.len() {
            ","
        } else {
            ""
        };
        let id = doc
            .attribute(a.root, "id")
            .map(|v| format!(", \"id\": \"{}\"", escape(v)))
            .unwrap_or_default();
        writeln!(
            out,
            "    {{\"rank\": {}, \"node\": {}, \"score\": {:.6}{id}}}{comma}",
            i + 1,
            a.root.index(),
            a.score.value()
        )?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    Ok(())
}
