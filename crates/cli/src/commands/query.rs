//! `whirlpool query` — run a top-k query against a document.

use crate::args::Parsed;
use crate::commands::{load_document, load_query};
use crate::CliError;
use std::io::Write;
use std::time::Duration;
use whirlpool_core::{
    evaluate, Algorithm, EvalOptions, FaultPlan, QueuePolicy, RelaxMode, RoutingStrategy,
};
use whirlpool_index::TagIndex;
use whirlpool_pattern::StaticPlan;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xml::{write_node, WriteOptions};

pub fn run(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(
        argv,
        &[
            "k",
            "algorithm",
            "routing",
            "queue",
            "norm",
            "batch",
            "deadline-ms",
            "max-ops",
            "fault",
            "fault-seed",
            "trace-out",
            "threads",
        ],
    )?;
    let file = parsed.positional(0, "file.xml")?.to_string();
    let query_src = parsed.positional(1, "query")?.to_string();
    parsed.expect_positionals(2)?;

    let doc = load_document(&file)?;
    let query = load_query(&query_src)?;
    let index = TagIndex::build(&doc);

    let norm = match parsed.value("norm").unwrap_or("sparse") {
        "sparse" => Normalization::Sparse,
        "dense" => Normalization::Dense,
        "none" => Normalization::None,
        other => return Err(CliError::Usage(format!("--norm: unknown {other:?}"))),
    };
    let model = TfIdfModel::build(&doc, &index, &query, norm);

    let algorithm = match parsed.value("algorithm").unwrap_or("whirlpool-s") {
        "whirlpool-s" | "s" => Algorithm::WhirlpoolS,
        "whirlpool-m" | "m" => Algorithm::WhirlpoolM { processors: None },
        "lockstep" => Algorithm::LockStep,
        "noprune" | "lockstep-noprune" => Algorithm::LockStepNoPrune,
        other => return Err(CliError::Usage(format!("--algorithm: unknown {other:?}"))),
    };
    let routing = match parsed.value("routing").unwrap_or("min-alive") {
        "min-alive" => RoutingStrategy::MinAlive,
        "max-score" => RoutingStrategy::MaxScore,
        "min-score" => RoutingStrategy::MinScore,
        "static" => RoutingStrategy::Static(StaticPlan::in_id_order(query.server_ids().count())),
        other => return Err(CliError::Usage(format!("--routing: unknown {other:?}"))),
    };
    let queue = match parsed.value("queue").unwrap_or("max-final") {
        "max-final" => QueuePolicy::MaxFinalScore,
        "max-next" => QueuePolicy::MaxNextScore,
        "current" => QueuePolicy::CurrentScore,
        "fifo" => QueuePolicy::Fifo,
        other => return Err(CliError::Usage(format!("--queue: unknown {other:?}"))),
    };

    let deadline = parsed
        .value("deadline-ms")
        .map(|v| {
            v.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| CliError::Usage(format!("--deadline-ms: not a number: {v:?}")))
        })
        .transpose()?;
    let max_server_ops = parsed
        .value("max-ops")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("--max-ops: not a number: {v:?}")))
        })
        .transpose()?;
    let fault_seed: u64 = parsed.number("fault-seed", 0)?;
    let fault_plan = parsed
        .value("fault")
        .map(|spec| {
            FaultPlan::parse(spec, fault_seed).map_err(|e| CliError::Usage(format!("--fault: {e}")))
        })
        .transpose()?;

    let trace_out = parsed.value("trace-out").map(str::to_string);
    let explain = parsed.flag("explain");
    if (trace_out.is_some() || explain) && !whirlpool_core::trace::tracing_compiled() {
        return Err(CliError::Usage(
            "--trace-out/--explain need the `trace` cargo feature (build without \
             --no-default-features)"
                .to_string(),
        ));
    }

    let options = EvalOptions {
        k: parsed.number("k", 10)?,
        relax: if parsed.flag("exact") {
            RelaxMode::Exact
        } else {
            RelaxMode::Relaxed
        },
        routing,
        queue,
        op_cost: None,
        selectivity_sample: 64,
        router_batch: parsed.number("batch", 1)?,
        pooling: !parsed.flag("no-pool"),
        op_batching: !parsed.flag("no-op-batching"),
        deadline,
        max_server_ops,
        fault_plan,
        cancel: None,
        trace: trace_out.is_some() || explain,
        threads: {
            let threads: usize = parsed.number("threads", 1)?;
            if threads == 0 {
                return Err(CliError::Usage("--threads must be at least 1".to_string()));
            }
            threads
        },
    };

    let result = evaluate(&doc, &index, &query, &model, &algorithm, &options);

    if let (Some(path), Some(trace)) = (&trace_out, &result.trace) {
        let mut file = std::fs::File::create(path)
            .map_err(|e| CliError::Usage(format!("--trace-out {path}: {e}")))?;
        trace
            .write_chrome_trace(&mut file)
            .map_err(|e| CliError::Usage(format!("--trace-out {path}: {e}")))?;
    }

    if parsed.flag("json") {
        // --explain is a human-readable view; it is skipped in JSON
        // mode so the output stays machine-parseable.
        return write_json(out, &doc, &query, &algorithm, &result);
    }

    writeln!(out, "query:     {query}")?;
    writeln!(out, "algorithm: {}", algorithm.name())?;
    match result.completeness {
        whirlpool_core::Completeness::Exact => writeln!(out, "result:    exact")?,
        whirlpool_core::Completeness::Truncated {
            pending_matches,
            score_bound,
        } => writeln!(
            out,
            "result:    truncated ({pending_matches} matches unresolved, \
             no missing answer can score above {score_bound:.4})"
        )?,
    }
    writeln!(out, "answers:   {}", result.answers.len())?;
    for (rank, a) in result.answers.iter().enumerate() {
        write!(
            out,
            "  #{:<3} score {:<8.4} node {:?}",
            rank + 1,
            a.score.value(),
            a.root
        )?;
        if let Some(id) = doc.attribute(a.root, "id") {
            write!(out, "  id={id}")?;
        }
        writeln!(out)?;
        if parsed.flag("xml") {
            let xml = write_node(
                &doc,
                a.root,
                &WriteOptions {
                    indent: Some(2),
                    declaration: false,
                },
            );
            for line in xml.lines() {
                writeln!(out, "      {line}")?;
            }
        }
    }
    writeln!(
        out,
        "work:      {} server ops ({} locate batches), {} comparisons, {} matches created, \
         {} pruned",
        result.metrics.server_ops,
        result.metrics.server_op_batches,
        result.metrics.predicate_comparisons,
        result.metrics.partials_created,
        result.metrics.pruned
    )?;
    writeln!(out, "elapsed:   {:?}", result.elapsed)?;
    if parsed.flag("stats") {
        writeln!(
            out,
            "anytime:   {} deadline hits, {} servers failed, {} matches redistributed, {} answers degraded",
            result.metrics.deadline_hits,
            result.metrics.servers_failed,
            result.metrics.matches_redistributed,
            result.metrics.answers_degraded
        )?;
        writeln!(
            out,
            "pool:      {} buffers allocated, {} reused ({:.1}% hit rate)",
            result.metrics.buffers_allocated,
            result.metrics.buffers_reused,
            result.metrics.pool_hit_rate() * 100.0
        )?;
    }
    if explain {
        if let Some(trace) = &result.trace {
            write_explain(out, trace)?;
        }
    }
    Ok(())
}

/// Renders the `--explain` view: where the router sent matches and
/// why, how pruning went, and how the threshold grew.
fn write_explain(out: &mut dyn Write, trace: &whirlpool_core::TraceData) -> Result<(), CliError> {
    let s = trace.summary();
    writeln!(out, "explain:")?;
    writeln!(
        out,
        "  matches:   {} spawned = {} consumed + {} pruned + {} completed + {} abandoned{}",
        s.spawned,
        s.consumed,
        s.pruned,
        s.completed,
        s.abandoned,
        if s.balanced() { "" } else { "  (UNBALANCED)" }
    )?;
    if s.degraded_completions > 0 {
        writeln!(
            out,
            "  degraded:  {} answers completed past dead servers",
            s.degraded_completions
        )?;
    }
    writeln!(out, "  routing:   {} decisions", s.routed)?;
    for (server, st) in &s.per_server {
        writeln!(
            out,
            "    q{}: {} matches routed here, {} ops ({} extensions, mean {:.1}µs, max {}µs)",
            server.0,
            st.routed_to,
            st.ops,
            st.produced,
            st.mean_us(),
            st.max_us
        )?;
    }
    match (s.thresholds.first(), s.thresholds.last()) {
        (Some((_, first)), Some((_, last))) => {
            writeln!(
                out,
                "  threshold: {first:.4} -> {last:.4} over {} samples",
                s.thresholds.len()
            )?;
        }
        _ => writeln!(out, "  threshold: never sampled (no server operations)")?,
    }
    // A few concrete decisions, first and last, to show the adaptive
    // choice and what the alternatives scored.
    let explains: Vec<_> = trace.explains().collect();
    let shown: Vec<usize> = if explains.len() <= 4 {
        (0..explains.len()).collect()
    } else {
        vec![0, 1, explains.len() - 2, explains.len() - 1]
    };
    let mut last_printed = None;
    for i in shown {
        if last_printed == Some(i) {
            continue;
        }
        if let Some(prev) = last_printed {
            if i > prev + 1 {
                writeln!(out, "    ...")?;
            }
        }
        last_printed = Some(i);
        let x = explains[i];
        let chosen = match x.chosen {
            Some(q) => format!("q{}", q.0),
            None => "none (all dead)".to_string(),
        };
        let mut cands = String::new();
        for c in &x.candidates {
            if !cands.is_empty() {
                cands.push_str(", ");
            }
            cands.push_str(&format!(
                "q{}={:.3}{}",
                c.server.0,
                c.estimate,
                if c.eligible { "" } else { " (dead)" }
            ));
        }
        writeln!(
            out,
            "    match #{}: {} -> {chosen}  [{cands}] threshold {:.4}, queue {}{}",
            x.seq,
            x.strategy,
            x.threshold,
            x.queue_len,
            if x.group > 1 {
                format!(", group of {}", x.group)
            } else {
                String::new()
            }
        )?;
    }
    Ok(())
}

/// Minimal JSON emitter (the approved dependency set has no serde_json;
/// the output shape is small and fully controlled here).
fn write_json(
    out: &mut dyn Write,
    doc: &whirlpool_xml::Document,
    query: &whirlpool_pattern::TreePattern,
    algorithm: &Algorithm,
    result: &whirlpool_core::EvalResult,
) -> Result<(), CliError> {
    fn escape(s: &str) -> String {
        let mut o = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => o.push_str("\\\""),
                '\\' => o.push_str("\\\\"),
                '\n' => o.push_str("\\n"),
                '\t' => o.push_str("\\t"),
                '\r' => o.push_str("\\r"),
                c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
                c => o.push(c),
            }
        }
        o
    }

    writeln!(out, "{{")?;
    writeln!(out, "  \"query\": \"{}\",", escape(&query.to_string()))?;
    writeln!(out, "  \"algorithm\": \"{}\",", algorithm.name())?;
    writeln!(out, "  \"result\": \"{}\",", result.completeness.label())?;
    if let whirlpool_core::Completeness::Truncated {
        pending_matches,
        score_bound,
    } = result.completeness
    {
        writeln!(out, "  \"pending_matches\": {pending_matches},")?;
        writeln!(out, "  \"score_bound\": {score_bound:.6},")?;
    }
    writeln!(
        out,
        "  \"elapsed_ms\": {:.3},",
        result.elapsed.as_secs_f64() * 1e3
    )?;
    let m = &result.metrics;
    writeln!(
        out,
        "  \"metrics\": {{\"server_ops\": {}, \"server_op_batches\": {}, \"predicate_comparisons\": {},          \"partials_created\": {}, \"pruned\": {}, \"routing_decisions\": {},          \"deadline_hits\": {}, \"servers_failed\": {}, \"matches_redistributed\": {},          \"answers_degraded\": {}}},",
        m.server_ops, m.server_op_batches, m.predicate_comparisons, m.partials_created, m.pruned,
        m.routing_decisions, m.deadline_hits, m.servers_failed, m.matches_redistributed,
        m.answers_degraded
    )?;
    writeln!(out, "  \"answers\": [")?;
    for (i, a) in result.answers.iter().enumerate() {
        let comma = if i + 1 < result.answers.len() {
            ","
        } else {
            ""
        };
        let id = doc
            .attribute(a.root, "id")
            .map(|v| format!(", \"id\": \"{}\"", escape(v)))
            .unwrap_or_default();
        writeln!(
            out,
            "    {{\"rank\": {}, \"node\": {}, \"score\": {:.6}{id}}}{comma}",
            i + 1,
            a.root.index(),
            a.score.value()
        )?;
    }
    writeln!(out, "  ]")?;
    writeln!(out, "}}")?;
    Ok(())
}
