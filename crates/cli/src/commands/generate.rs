//! `whirlpool generate` — emit an XMark-like document.

use crate::args::Parsed;
use crate::CliError;
use std::io::Write;
use whirlpool_xmark::{generate, GeneratorConfig};
use whirlpool_xml::{write_document, DocumentStats, WriteOptions};

pub fn run(argv: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::parse(argv, &["mb", "items", "seed"])?;
    let path = parsed.positional(0, "out.xml")?.to_string();
    parsed.expect_positionals(1)?;

    let seed: u64 = parsed.number("seed", 42)?;
    let config = if let Some(items) = parsed.value("items") {
        let items: usize = items
            .parse()
            .map_err(|_| CliError::Usage(format!("--items: cannot parse {items:?}")))?;
        GeneratorConfig::items(items).with_seed(seed)
    } else {
        let mb: usize = parsed.number("mb", 1)?;
        GeneratorConfig::megabytes(mb).with_seed(seed)
    };

    let doc = generate(&config);
    let xml = write_document(
        &doc,
        &WriteOptions {
            indent: None,
            declaration: true,
        },
    );
    std::fs::write(&path, &xml)
        .map_err(|e| CliError::Usage(format!("cannot write {path}: {e}")))?;

    let stats = DocumentStats::compute(&doc);
    writeln!(
        out,
        "wrote {path}: {} bytes, {} elements, {} items (seed {seed})",
        xml.len(),
        stats.element_count,
        stats.count_for(&doc, "item"),
    )?;
    Ok(())
}
