//! Minimal flag parsing (no external dependency): positional arguments
//! plus `--flag` / `--flag value` options.

use std::collections::HashMap;
use std::fmt;

/// A parsed argument list.
#[derive(Debug, Default)]
pub struct Parsed {
    positional: Vec<String>,
    options: HashMap<String, Option<String>>,
}

/// Flag-parsing error with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError {
    pub message: String,
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ArgError {}

fn err(message: impl Into<String>) -> ArgError {
    ArgError {
        message: message.into(),
    }
}

impl Parsed {
    /// Parses `argv`. `value_flags` lists the flags that consume a
    /// value; all other `--flags` are boolean.
    pub fn parse(argv: &[&str], value_flags: &[&str]) -> Result<Parsed, ArgError> {
        let mut parsed = Parsed::default();
        let mut it = argv.iter().peekable();
        while let Some(&token) = it.next() {
            if let Some(name) = token.strip_prefix("--") {
                if name.is_empty() {
                    return Err(err("bare `--` is not supported"));
                }
                if parsed.options.contains_key(name) {
                    return Err(err(format!("--{name} given twice")));
                }
                if value_flags.contains(&name) {
                    let value = it
                        .next()
                        .ok_or_else(|| err(format!("--{name} needs a value")))?;
                    parsed
                        .options
                        .insert(name.to_string(), Some(value.to_string()));
                } else {
                    parsed.options.insert(name.to_string(), None);
                }
            } else {
                parsed.positional.push(token.to_string());
            }
        }
        Ok(parsed)
    }

    /// The `i`-th positional argument, or a usage error naming it.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, ArgError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| err(format!("missing <{name}> argument")))
    }

    /// Count of positional arguments.
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }

    /// Rejects unexpected extra positionals.
    pub fn expect_positionals(&self, n: usize) -> Result<(), ArgError> {
        if self.positional.len() > n {
            return Err(err(format!("unexpected argument {:?}", self.positional[n])));
        }
        Ok(())
    }

    /// Is a boolean flag present?
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// A string-valued option.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|v| v.as_deref())
    }

    /// A parsed numeric option with a default.
    pub fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.value(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| err(format!("--{name}: cannot parse {raw:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(argv: &[&str]) -> Result<Parsed, ArgError> {
        Parsed::parse(argv, &["k", "seed"])
    }

    #[test]
    fn positionals_and_flags() {
        let parsed = p(&["doc.xml", "--k", "5", "--xml", "//a"]).unwrap();
        assert_eq!(parsed.positional(0, "file").unwrap(), "doc.xml");
        assert_eq!(parsed.positional(1, "query").unwrap(), "//a");
        assert_eq!(parsed.positional_len(), 2);
        assert!(parsed.flag("xml"));
        assert!(!parsed.flag("exact"));
        assert_eq!(parsed.number::<usize>("k", 10).unwrap(), 5);
        assert_eq!(parsed.number::<usize>("seed", 42).unwrap(), 42);
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = p(&["--k"]).unwrap_err();
        assert!(e.message.contains("needs a value"), "{e}");
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        let e = p(&["--xml", "--xml"]).unwrap_err();
        assert!(e.message.contains("twice"), "{e}");
    }

    #[test]
    fn bad_number_is_an_error() {
        let parsed = p(&["--k", "many"]).unwrap();
        assert!(parsed.number::<usize>("k", 1).is_err());
    }

    #[test]
    fn missing_positional_is_an_error() {
        let parsed = p(&[]).unwrap();
        assert!(parsed.positional(0, "file").is_err());
    }

    #[test]
    fn extra_positionals_rejected() {
        let parsed = p(&["a", "b", "c"]).unwrap();
        assert!(parsed.expect_positionals(2).is_err());
        assert!(parsed.expect_positionals(3).is_ok());
    }
}
