//! `whirlpool` — top-k XML querying from the command line.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match whirlpool_cli::run(&args, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
