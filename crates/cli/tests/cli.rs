//! End-to-end tests of the `whirlpool` CLI (library entry point; no
//! subprocess spawning needed).

use whirlpool_cli::run;

fn run_ok(argv: &[&str]) -> String {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&argv, &mut out).unwrap_or_else(|e| panic!("{argv:?} failed: {e}"));
    String::from_utf8(out).unwrap()
}

fn run_err(argv: &[&str]) -> String {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&argv, &mut out)
        .expect_err("expected failure")
        .to_string()
}

/// A scratch directory unique to this test binary run.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("whirlpool-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn sample_file() -> std::path::PathBuf {
    let path = scratch("sample.xml");
    std::fs::write(
        &path,
        "<shelf>\
         <book id=\"a\"><title>wodehouse</title><isbn>1</isbn></book>\
         <book id=\"b\"><title>tolkien</title></book>\
         <book id=\"c\"><deep><title>wodehouse</title></deep></book>\
         </shelf>",
    )
    .unwrap();
    path
}

#[test]
fn query_returns_ranked_answers() {
    let file = sample_file();
    let out = run_ok(&[
        "query",
        file.to_str().unwrap(),
        "//book[./title and ./isbn]",
        "--k",
        "3",
    ]);
    assert!(out.contains("answers:   3"), "{out}");
    assert!(out.contains("#1"), "{out}");
    assert!(out.contains("id=a"), "{out}");
    assert!(out.contains("server ops"), "{out}");
}

#[test]
fn query_exact_mode_filters() {
    let file = sample_file();
    let out = run_ok(&[
        "query",
        file.to_str().unwrap(),
        "//book[./title = 'wodehouse']",
        "--exact",
    ]);
    assert!(out.contains("answers:   1"), "{out}");
}

#[test]
fn query_xml_flag_prints_fragments() {
    let file = sample_file();
    let out = run_ok(&[
        "query",
        file.to_str().unwrap(),
        "//book[./isbn]",
        "--k",
        "1",
        "--xml",
    ]);
    assert!(out.contains("<isbn>"), "{out}");
}

#[test]
fn query_all_algorithms_accepted() {
    let file = sample_file();
    for alg in ["whirlpool-s", "whirlpool-m", "lockstep", "noprune"] {
        let out = run_ok(&[
            "query",
            file.to_str().unwrap(),
            "//book[./title]",
            "--algorithm",
            alg,
        ]);
        assert!(out.contains("answers:"), "alg={alg}: {out}");
    }
}

#[test]
fn query_accepts_bulk_routing_batch() {
    let file = sample_file();
    let out = run_ok(&[
        "query",
        file.to_str().unwrap(),
        "//book[./title and ./isbn]",
        "--batch",
        "8",
    ]);
    assert!(out.contains("answers:"), "{out}");
}

#[test]
fn query_json_output_is_parseable_shape() {
    let file = sample_file();
    let out = run_ok(&[
        "query",
        file.to_str().unwrap(),
        "//book[./title and ./isbn]",
        "--k",
        "2",
        "--json",
    ]);
    assert!(out.trim_start().starts_with('{'), "{out}");
    assert!(out.trim_end().ends_with('}'), "{out}");
    assert!(out.contains("\"answers\": ["), "{out}");
    assert!(out.contains("\"rank\": 1"), "{out}");
    assert!(out.contains("\"id\": \"a\""), "{out}");
    assert!(out.contains("\"server_ops\""), "{out}");
    // Balanced braces/brackets (cheap well-formedness check).
    assert_eq!(out.matches('{').count(), out.matches('}').count());
    assert_eq!(out.matches('[').count(), out.matches(']').count());
}

#[test]
fn query_rejects_bad_options() {
    let file = sample_file();
    let f = file.to_str().unwrap();
    assert!(run_err(&["query", f, "//b[./t]", "--algorithm", "nope"]).contains("unknown"));
    assert!(run_err(&["query", f, "//b[./t]", "--routing", "nope"]).contains("unknown"));
    assert!(run_err(&["query", f, "//b[./t]", "--norm", "nope"]).contains("unknown"));
    assert!(run_err(&["query", f, "not a query"]).contains("query"));
    assert!(run_err(&["query", "/nonexistent.xml", "//a"]).contains("cannot read"));
    assert!(run_err(&["query"]).contains("missing"));
}

#[test]
fn query_without_budget_reports_exact() {
    let file = sample_file();
    let out = run_ok(&["query", file.to_str().unwrap(), "//book[./title]"]);
    assert!(out.contains("result:    exact"), "{out}");
}

#[test]
fn query_with_zero_op_budget_reports_truncated() {
    let file = sample_file();
    let f = file.to_str().unwrap();
    let out = run_ok(&["query", f, "//book[./title and ./isbn]", "--max-ops", "0"]);
    assert!(out.contains("result:    truncated"), "{out}");
    assert!(out.contains("can score above"), "{out}");

    let json = run_ok(&[
        "query",
        f,
        "//book[./title and ./isbn]",
        "--max-ops",
        "0",
        "--json",
    ]);
    assert!(json.contains("\"result\": \"truncated\""), "{json}");
    assert!(json.contains("\"pending_matches\""), "{json}");
    assert!(json.contains("\"score_bound\""), "{json}");
}

#[test]
fn query_stats_flag_prints_robustness_counters() {
    let file = sample_file();
    let out = run_ok(&[
        "query",
        file.to_str().unwrap(),
        "//book[./title]",
        "--stats",
    ]);
    assert!(out.contains("deadline hits"), "{out}");
    assert!(out.contains("servers failed"), "{out}");
}

#[test]
fn query_fault_injection_survives_and_is_reported() {
    let file = sample_file();
    let f = file.to_str().unwrap();
    for alg in ["whirlpool-s", "whirlpool-m", "lockstep", "noprune"] {
        let out = run_ok(&[
            "query",
            f,
            "//book[./title and ./isbn]",
            "--algorithm",
            alg,
            "--fault",
            "server=1:fail@0",
            "--fault-seed",
            "3",
            "--stats",
            "--json",
        ]);
        assert!(
            out.contains("\"result\": \"truncated\""),
            "alg={alg}: {out}"
        );
        assert!(out.contains("\"servers_failed\": 1"), "alg={alg}: {out}");
    }
}

#[test]
fn query_rejects_bad_fault_specs() {
    let file = sample_file();
    let f = file.to_str().unwrap();
    for bad in ["nope", "server=0:panic@1", "server=1:explode@3"] {
        let err = run_err(&["query", f, "//book[./title]", "--fault", bad]);
        assert!(err.contains("fault"), "spec={bad}: {err}");
    }
}

#[test]
fn generate_then_stats_then_query_pipeline() {
    let out_path = scratch("generated.xml");
    let generated = run_ok(&[
        "generate",
        out_path.to_str().unwrap(),
        "--items",
        "40",
        "--seed",
        "7",
    ]);
    assert!(generated.contains("40 items"), "{generated}");

    let stats = run_ok(&["stats", out_path.to_str().unwrap()]);
    assert!(stats.contains("elements:"), "{stats}");
    assert!(stats.contains("item"), "{stats}");

    let result = run_ok(&[
        "query",
        out_path.to_str().unwrap(),
        "//item[./description/parlist]",
        "--k",
        "5",
    ]);
    assert!(result.contains("answers:   5"), "{result}");
}

#[test]
fn generate_is_seed_deterministic() {
    let p1 = scratch("gen1.xml");
    let p2 = scratch("gen2.xml");
    run_ok(&[
        "generate",
        p1.to_str().unwrap(),
        "--items",
        "20",
        "--seed",
        "9",
    ]);
    run_ok(&[
        "generate",
        p2.to_str().unwrap(),
        "--items",
        "20",
        "--seed",
        "9",
    ]);
    assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
}

#[test]
fn index_then_query_from_binary_store() {
    let xml_path = scratch("to_index.xml");
    std::fs::write(
        &xml_path,
        "<r><book><title>x</title><isbn>1</isbn></book><book><title>y</title></book></r>",
    )
    .unwrap();
    let store_path = scratch("indexed.wpx");
    let out = run_ok(&[
        "index",
        xml_path.to_str().unwrap(),
        store_path.to_str().unwrap(),
    ]);
    assert!(out.contains("indexed"), "{out}");

    // Querying the store must give the same answers as the XML.
    let from_xml = run_ok(&[
        "query",
        xml_path.to_str().unwrap(),
        "//book[./title and ./isbn]",
        "--k",
        "2",
    ]);
    let from_store = run_ok(&[
        "query",
        store_path.to_str().unwrap(),
        "//book[./title and ./isbn]",
        "--k",
        "2",
    ]);
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("elapsed"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&from_xml), strip(&from_store));

    // stats works on stores too.
    let stats = run_ok(&["stats", store_path.to_str().unwrap()]);
    assert!(stats.contains("elements:         6"), "{stats}");
}

#[test]
fn relax_lists_relaxations() {
    let out = run_ok(&["relax", "//item[./description/parlist]"]);
    assert!(out.contains("edge-generalization(description)"), "{out}");
    assert!(out.contains("leaf-deletion(parlist)"), "{out}");
    assert!(out.contains("closure size:"), "{out}");
}

#[test]
fn explain_shows_weights_and_selectivity() {
    let file = sample_file();
    let out = run_ok(&[
        "explain",
        file.to_str().unwrap(),
        "//book[./title and ./isbn]",
    ]);
    assert!(out.contains("root candidates: 3"), "{out}");
    assert!(out.contains("title"), "{out}");
    assert!(out.contains("w-exact"), "{out}");
}

#[test]
fn help_and_unknown_command() {
    let out = run_ok(&["help"]);
    assert!(out.contains("USAGE"), "{out}");
    assert!(run_err(&["bogus"]).contains("unknown command"));
}

/// Two shard files for collection-mode tests: one rich (full matches),
/// one poor (title-only books).
fn collection_files() -> (std::path::PathBuf, std::path::PathBuf) {
    let rich = scratch("coll-rich.xml");
    std::fs::write(
        &rich,
        "<shelf>\
         <book id=\"r1\"><title>dune</title><isbn>1</isbn></book>\
         <book id=\"r2\"><title>atlas</title><isbn>2</isbn></book>\
         </shelf>",
    )
    .unwrap();
    let poor = scratch("coll-poor.xml");
    std::fs::write(
        &poor,
        "<shelf>\
         <book id=\"p1\"><title>void</title></book>\
         <book id=\"p2\"><title>blank</title></book>\
         </shelf>",
    )
    .unwrap();
    (rich, poor)
}

#[test]
fn query_multiple_files_runs_a_collection() {
    let (rich, poor) = collection_files();
    let out = run_ok(&[
        "query",
        rich.to_str().unwrap(),
        poor.to_str().unwrap(),
        "//book[./title and ./isbn]",
        "--k",
        "2",
    ]);
    assert!(out.contains("collection: 2 shards"), "{out}");
    assert!(out.contains("shard coll-rich"), "{out}");
    assert!(out.contains("id=r1"), "{out}");
    // k=2 filled by the rich shard's full matches: the poor shard's
    // ceiling (title-only) cannot beat the threshold and is pruned.
    assert!(out.contains("1 pruned"), "{out}");
}

#[test]
fn query_collection_dir_and_json_shape() {
    let (rich, poor) = collection_files();
    let dir = rich.parent().unwrap().join("coll-dir");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::copy(&rich, dir.join("rich.xml")).unwrap();
    std::fs::copy(&poor, dir.join("poor.xml")).unwrap();
    let out = run_ok(&[
        "query",
        "--collection",
        dir.to_str().unwrap(),
        "//book[./title]",
        "--k",
        "4",
        "--json",
    ]);
    assert!(
        out.contains("\"collection\": {\"shards_total\": 2"),
        "{out}"
    );
    assert!(out.contains("\"shard\": \"rich\""), "{out}");
    assert!(out.contains("\"shard\": \"poor\""), "{out}");
    assert!(out.trim_start().starts_with('{'), "{out}");
    assert!(out.trim_end().ends_with('}'), "{out}");
}

#[test]
fn query_split_shards_one_document() {
    let file = sample_file();
    let out = run_ok(&[
        "query",
        file.to_str().unwrap(),
        "//book[./title]",
        "--split",
        "3",
        "--k",
        "3",
    ]);
    assert!(out.contains("collection: 3 shards"), "{out}");
    assert!(out.contains("shard split-0"), "{out}");
}

#[test]
fn query_collection_rejects_per_document_features() {
    let (rich, poor) = collection_files();
    let err = run_err(&[
        "query",
        rich.to_str().unwrap(),
        poor.to_str().unwrap(),
        "//book[./title]",
        "--fault",
        "server=1:fail@0",
    ]);
    assert!(err.contains("collection mode"), "{err}");
    let err = run_err(&[
        "query",
        "--split",
        "2",
        "--collection",
        "somewhere",
        "//book[./title]",
    ]);
    assert!(err.contains("--split"), "{err}");
}

#[test]
fn snapshot_build_verify_info_and_query_pipeline() {
    let file = sample_file();
    let snap = scratch("sample.wps");
    let out = run_ok(&[
        "snapshot",
        "build",
        file.to_str().unwrap(),
        snap.to_str().unwrap(),
    ]);
    assert!(out.contains("snapshot"), "{out}");

    let verify = run_ok(&["snapshot", "verify", snap.to_str().unwrap()]);
    assert!(verify.starts_with("ok:"), "{verify}");
    let info = run_ok(&["snapshot", "info", snap.to_str().unwrap()]);
    assert!(info.contains("elements:  9"), "{info}");
    assert!(info.contains("book"), "{info}");

    // Query through --snapshot: same answers as the parsed run, and the
    // stats line reports the attach cost instead of an index build.
    let parsed_run = run_ok(&[
        "query",
        file.to_str().unwrap(),
        "//book[./title and ./isbn]",
        "--k",
        "3",
    ]);
    let snap_run = run_ok(&[
        "query",
        "--snapshot",
        snap.to_str().unwrap(),
        "//book[./title and ./isbn]",
        "--k",
        "3",
        "--stats",
        "--xml",
    ]);
    assert!(snap_run.contains("answers:   3"), "{snap_run}");
    assert!(snap_run.contains("id=a"), "{snap_run}");
    assert!(snap_run.contains("<isbn>"), "{snap_run}");
    assert!(snap_run.contains("snapshot_attach_ms"), "{snap_run}");
    for line in parsed_run.lines().filter(|l| l.contains("score")) {
        assert!(snap_run.contains(line), "missing {line:?} in {snap_run}");
    }

    // A snapshot given as a plain positional attaches automatically.
    let auto = run_ok(&[
        "query",
        snap.to_str().unwrap(),
        "//book[./title and ./isbn]",
        "--json",
    ]);
    assert!(auto.contains("\"snapshot_attach_ms\""), "{auto}");
    // And the parsed path reports the build cost under the same scheme.
    let parsed_json = run_ok(&["query", file.to_str().unwrap(), "//book[./title]", "--json"]);
    assert!(parsed_json.contains("\"index_build_ms\""), "{parsed_json}");

    // --snapshot insists on a real snapshot file.
    let err = run_err(&[
        "query",
        "--snapshot",
        file.to_str().unwrap(),
        "//book[./title]",
    ]);
    assert!(err.contains("not a snapshot"), "{err}");
}

#[test]
fn collection_attaches_snapshot_shards() {
    let dir = scratch("snapcoll");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("rich.xml"),
        "<shelf><book><title>dune</title><isbn>1</isbn></book></shelf>",
    )
    .unwrap();
    let poor_xml = scratch("poor-src.xml");
    std::fs::write(&poor_xml, "<shelf><book><title>ubik</title></book></shelf>").unwrap();
    run_ok(&[
        "snapshot",
        "build",
        poor_xml.to_str().unwrap(),
        dir.join("poor.wps").to_str().unwrap(),
    ]);
    let out = run_ok(&[
        "query",
        "--collection",
        dir.to_str().unwrap(),
        "//book[./title and ./isbn]",
        "--k",
        "2",
    ]);
    assert!(out.contains("collection: 2 shards"), "{out}");
    assert!(out.contains("shard poor"), "{out}");
    assert!(out.contains("shard rich"), "{out}");
}
