//! Property-based corruption tests for the version-2 snapshot format.
//!
//! The attach path promises: any truncated, bit-flipped, byte-mangled,
//! or mis-sized snapshot yields a clean [`StoreError`] — never a panic,
//! never an out-of-bounds read, never a silently wrong view. These
//! properties drive arbitrary documents *and* arbitrary corruptions
//! through `Snapshot::from_bytes` (the same validator `attach` uses).

use proptest::prelude::*;
use whirlpool_index::TagIndex;
use whirlpool_store::{build_snapshot_bytes, Snapshot};
use whirlpool_xml::{write_document, DocumentBuilder, WriteOptions};

const TAGS: [&str; 6] = ["a", "b", "c", "item", "text", "name"];

#[derive(Debug, Clone)]
struct Tree {
    tag: usize,
    text: Option<String>,
    attrs: Vec<(usize, String)>,
    children: Vec<Tree>,
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let attr = (0usize..TAGS.len(), "[a-z0-9 ]{0,8}");
    let leaf = (
        0usize..TAGS.len(),
        prop::option::of("[a-z <>&\"é0-9]{0,12}"),
        prop::collection::vec(attr.clone(), 0..2),
    )
        .prop_map(|(tag, text, attrs)| Tree {
            tag,
            text,
            attrs,
            children: vec![],
        });
    leaf.prop_recursive(4, 40, 4, move |inner| {
        (
            0usize..TAGS.len(),
            prop::option::of("[a-z <>&\"é0-9]{0,12}"),
            prop::collection::vec((0usize..TAGS.len(), "[a-z0-9 ]{0,8}"), 0..2),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, text, attrs, children)| Tree {
                tag,
                text,
                attrs,
                children,
            })
    })
}

fn build(tree: &Tree, b: &mut DocumentBuilder) {
    b.open(TAGS[tree.tag]);
    let mut used = [false; TAGS.len()];
    for (name, value) in &tree.attrs {
        if !used[*name] {
            used[*name] = true;
            b.attribute(TAGS[*name], value);
        }
    }
    if let Some(t) = &tree.text {
        b.text(t);
    }
    for c in &tree.children {
        build(c, b);
    }
    b.close();
}

fn snapshot_bytes(trees: &[Tree]) -> Vec<u8> {
    let mut builder = DocumentBuilder::new();
    for t in trees {
        build(t, &mut builder);
    }
    let doc = builder.finish();
    let index = TagIndex::build(&doc);
    build_snapshot_bytes(&doc, &index)
}

proptest! {
    /// Snapshot → views → rebuilt document is lossless for arbitrary
    /// documents (checked via canonical XML serialization).
    #[test]
    fn snapshot_roundtrip_is_lossless(trees in prop::collection::vec(tree_strategy(), 1..4)) {
        let mut builder = DocumentBuilder::new();
        for t in &trees {
            build(t, &mut builder);
        }
        let doc = builder.finish();
        let index = TagIndex::build(&doc);
        let bytes = build_snapshot_bytes(&doc, &index);

        let snap = Snapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(snap.node_count(), doc.len());
        let opts = WriteOptions::default();
        prop_assert_eq!(
            write_document(&doc, &opts),
            write_document(&snap.to_document(), &opts)
        );
    }

    /// Flipping any single bit anywhere in the file — header, section
    /// table, payload, padding, checksum — must make attach fail.
    #[test]
    fn bit_flips_always_error(
        trees in prop::collection::vec(tree_strategy(), 1..3),
        byte_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let clean = snapshot_bytes(&trees);
        let mut corrupt = clean.clone();
        let pos = (byte_seed % corrupt.len() as u64) as usize;
        corrupt[pos] ^= 1 << bit;
        prop_assert!(
            Snapshot::from_bytes(&corrupt).is_err(),
            "flip at byte {pos} bit {bit} went undetected"
        );
    }

    /// Truncating a valid snapshot anywhere always fails cleanly.
    #[test]
    fn truncation_always_errors(
        trees in prop::collection::vec(tree_strategy(), 1..3),
        cut_seed in any::<u64>(),
    ) {
        let clean = snapshot_bytes(&trees);
        let cut = (cut_seed % clean.len() as u64) as usize;
        prop_assert!(Snapshot::from_bytes(&clean[..cut]).is_err(), "cut={cut}");
    }

    /// Prepending garbage (shifting every section off its stated
    /// offset, i.e. a misaligned/displaced layout) always fails, as
    /// does appending trailing garbage.
    #[test]
    fn misaligned_and_padded_layouts_error(
        trees in prop::collection::vec(tree_strategy(), 1..3),
        shift in 1usize..16,
    ) {
        let clean = snapshot_bytes(&trees);
        let mut shifted = vec![0u8; shift];
        shifted.extend_from_slice(&clean);
        prop_assert!(Snapshot::from_bytes(&shifted).is_err(), "shift={shift}");

        let mut padded = clean.clone();
        padded.extend(std::iter::repeat(0xAB).take(shift));
        prop_assert!(Snapshot::from_bytes(&padded).is_err(), "pad={shift}");
    }

    /// Completely arbitrary bytes never attach (and never panic).
    #[test]
    fn random_bytes_never_attach(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        // A random blob passing magic + version + checksum is
        // astronomically unlikely; what matters is "no panic".
        let _ = Snapshot::from_bytes(&bytes);
    }
}
