//! Backward compatibility: version-1 store files written before the
//! version-2 snapshot format existed must keep loading, byte-for-byte.
//!
//! The fixture below is the literal `write_store` output (version 1)
//! for a small document, captured when v2 was introduced. If this test
//! fails, a change broke reading of already-on-disk v1 files — that is
//! a format regression, not a fixture to regenerate.

use whirlpool_store::{
    read_store, store_version, write_store, SnapshotOptions, SNAPSHOT_VERSION,
    SNAPSHOT_VERSION_PATHS,
};

/// v1 bytes for:
/// `<shelf><book id="b1"><title>Top-K</title></book><cd>é</cd></shelf>`
const PINNED_V1: &[u8] = &[
    87, 80, 76, 88, 1, 0, 0, 0, 6, 0, 0, 0, 9, 0, 0, 0, 35, 100, 111, 99, 45, 114, 111, 111, 116,
    5, 0, 0, 0, 115, 104, 101, 108, 102, 4, 0, 0, 0, 98, 111, 111, 107, 2, 0, 0, 0, 105, 100, 5, 0,
    0, 0, 116, 105, 116, 108, 101, 2, 0, 0, 0, 99, 100, 4, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 255,
    255, 255, 255, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, 255, 255, 255, 255, 1, 0, 3, 0, 0, 0, 2, 0, 0, 0,
    98, 49, 4, 0, 0, 0, 2, 0, 0, 0, 5, 0, 0, 0, 84, 111, 112, 45, 75, 0, 0, 5, 0, 0, 0, 1, 0, 0, 0,
    2, 0, 0, 0, 195, 169, 0, 0, 118, 94, 171, 46, 178, 40, 167, 220,
];

#[test]
fn pinned_v1_bytes_still_load() {
    let doc = read_store(&mut &PINNED_V1[..]).expect("v1 store must stay readable");
    assert_eq!(doc.len(), 5); // root + shelf, book, title, cd
    let title = doc
        .elements()
        .find(|&n| doc.tag_str(n) == "title")
        .expect("title element");
    assert_eq!(doc.text(title), Some("Top-K"));
    let book = doc.parent(title).unwrap();
    assert_eq!(doc.tag_str(book), "book");
    assert_eq!(doc.attribute(book, "id"), Some("b1"));
    let cd = doc.elements().find(|&n| doc.tag_str(n) == "cd").unwrap();
    assert_eq!(doc.text(cd), Some("é"));
}

#[test]
fn v1_writer_still_emits_the_pinned_bytes() {
    // The v1 *writer* is also frozen: new code must not silently change
    // what `write_store` emits for existing documents.
    let doc = whirlpool_xml::parse_document(
        "<shelf><book id=\"b1\"><title>Top-K</title></book><cd>é</cd></shelf>",
    )
    .unwrap();
    let mut buf = Vec::new();
    write_store(&doc, &mut buf).unwrap();
    assert_eq!(buf, PINNED_V1);
}

#[test]
fn version_sniffing_distinguishes_v1_v2_and_v3() {
    let dir = std::env::temp_dir().join(format!("wpl-v1compat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1_path = dir.join("doc.wpx");
    std::fs::write(&v1_path, PINNED_V1).unwrap();
    assert_eq!(store_version(&v1_path), Some(1));

    let doc = whirlpool_xml::parse_document("<a><b/></a>").unwrap();
    let index = whirlpool_index::TagIndex::build(&doc);
    let v2_path = dir.join("doc-v2.wps");
    whirlpool_store::save_snapshot_with(
        &doc,
        &index,
        &v2_path,
        &SnapshotOptions {
            path_synopsis: false,
        },
    )
    .unwrap();
    assert_eq!(store_version(&v2_path), Some(SNAPSHOT_VERSION));
    let v3_path = dir.join("doc-v3.wps");
    whirlpool_store::save_snapshot(&doc, &index, &v3_path).unwrap();
    assert_eq!(store_version(&v3_path), Some(SNAPSHOT_VERSION_PATHS));

    // And the streaming reader handles all three through version
    // dispatch.
    let via_v1 = whirlpool_store::load_file(&v1_path).unwrap();
    assert_eq!(via_v1.len(), 5);
    let via_v2 = whirlpool_store::load_file(&v2_path).unwrap();
    assert_eq!(via_v2.len(), doc.len());
    let via_v3 = whirlpool_store::load_file(&v3_path).unwrap();
    assert_eq!(via_v3.len(), doc.len());

    // v2 files (no stored synopsis section) still attach and peek; the
    // peek derives tag counts and reports no dataguide.
    let v2 = whirlpool_store::Snapshot::attach(&v2_path).unwrap();
    assert_eq!(v2.version(), SNAPSHOT_VERSION);
    assert!(v2.path_synopsis().is_none());
    let v2_peek = whirlpool_store::Snapshot::peek(&v2_path).unwrap();
    assert!(v2_peek.paths.is_none());
    assert_eq!(v2_peek.synopsis.tag_count("b"), 1);
    let v3 = whirlpool_store::Snapshot::attach(&v3_path).unwrap();
    assert_eq!(v3.version(), SNAPSHOT_VERSION_PATHS);
    assert!(v3.path_synopsis().is_some());
}
