//! Property-based round-trip tests for the binary store.

use proptest::prelude::*;
use whirlpool_store::{read_store, write_store};
use whirlpool_xml::{write_document, DocumentBuilder, WriteOptions};

const TAGS: [&str; 6] = ["a", "b", "c", "item", "text", "name"];

#[derive(Debug, Clone)]
struct Tree {
    tag: usize,
    text: Option<String>,
    attrs: Vec<(usize, String)>,
    children: Vec<Tree>,
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let attr = (0usize..TAGS.len(), "[a-z0-9 ]{0,8}");
    let leaf = (
        0usize..TAGS.len(),
        prop::option::of("[a-z <>&\"0-9]{0,12}"),
        prop::collection::vec(attr.clone(), 0..2),
    )
        .prop_map(|(tag, text, attrs)| Tree {
            tag,
            text,
            attrs,
            children: vec![],
        });
    leaf.prop_recursive(4, 40, 4, move |inner| {
        (
            0usize..TAGS.len(),
            prop::option::of("[a-z <>&\"0-9]{0,12}"),
            prop::collection::vec((0usize..TAGS.len(), "[a-z0-9 ]{0,8}"), 0..2),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, text, attrs, children)| Tree {
                tag,
                text,
                attrs,
                children,
            })
    })
}

fn build(tree: &Tree, b: &mut DocumentBuilder) {
    b.open(TAGS[tree.tag]);
    // Attribute names must be unique per element; dedup by tag index.
    let mut used = [false; TAGS.len()];
    for (name, value) in &tree.attrs {
        if !used[*name] {
            used[*name] = true;
            b.attribute(TAGS[*name], value);
        }
    }
    if let Some(t) = &tree.text {
        b.text(t);
    }
    for c in &tree.children {
        build(c, b);
    }
    b.close();
}

proptest! {
    /// write → read is lossless for arbitrary documents (checked via
    /// canonical XML serialization and Dewey identity).
    #[test]
    fn store_roundtrip_is_lossless(trees in prop::collection::vec(tree_strategy(), 1..4)) {
        let mut builder = DocumentBuilder::new();
        for t in &trees {
            build(t, &mut builder);
        }
        let doc = builder.finish();

        let mut buf = Vec::new();
        write_store(&doc, &mut buf).unwrap();
        let reloaded = read_store(&mut buf.as_slice()).unwrap();

        let opts = WriteOptions::default();
        prop_assert_eq!(write_document(&doc, &opts), write_document(&reloaded, &opts));
        prop_assert_eq!(doc.len(), reloaded.len());
        for id in doc.elements() {
            prop_assert_eq!(doc.dewey(id), reloaded.dewey(id));
        }
    }

    /// Truncating a valid store anywhere always fails cleanly (no
    /// panic, no silent partial document).
    #[test]
    fn truncation_always_errors(trees in prop::collection::vec(tree_strategy(), 1..3)) {
        let mut builder = DocumentBuilder::new();
        for t in &trees {
            build(t, &mut builder);
        }
        let doc = builder.finish();
        let mut buf = Vec::new();
        write_store(&doc, &mut buf).unwrap();
        for cut in (0..buf.len().saturating_sub(1)).step_by(7) {
            prop_assert!(read_store(&mut &buf[..cut]).is_err(), "cut={cut}");
        }
    }
}
