#![warn(missing_docs)]

//! Binary persistence for parsed documents.
//!
//! Stores a parsed [`Document`] in a compact, *checksummed* binary
//! format that round-trips exactly: documents load without XML parsing
//! or entity decoding, any corruption or truncation is detected before
//! a partial document can be observed, and the files are ~25% smaller
//! than the XML. (Load time is comparable to this repository's — very
//! fast — XML parser; see the `xml/store_load` bench.) The format
//! exploits the arena invariants: nodes are stored in document
//! (pre-)order with only `(tag, parent, text, attributes)` per node —
//! children lists and Dewey identifiers are fully determined by the
//! parent sequence and are rebuilt on load.
//!
//! ```
//! use whirlpool_store::{read_store, write_store};
//! let doc = whirlpool_xml::parse_document("<a><b>t</b></a>").unwrap();
//! let mut buffer = Vec::new();
//! write_store(&doc, &mut buffer).unwrap();
//! let reloaded = read_store(&mut buffer.as_slice()).unwrap();
//! assert_eq!(reloaded.len(), doc.len());
//! ```
//!
//! # Format (version 1, little-endian)
//!
//! ```text
//! magic    "WPLX"            4 bytes
//! version  u32               currently 1
//! tags     u32 count, then per tag: u32 len + UTF-8 bytes
//! nodes    u32 count (elements only, document order), per node:
//!            u32 tag id
//!            u32 parent node id (0 = the synthetic document root)
//!            u32 text length or u32::MAX for none, + UTF-8 bytes
//!            u16 attribute count, per attribute:
//!              u32 name tag id, u32 value length + UTF-8 bytes
//! checksum u64 FNV-1a over everything after the 8-byte header
//! ```

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use whirlpool_xml::{Document, DocumentBuilder};

mod mmap;
mod snapshot;

pub use snapshot::{
    build_snapshot_bytes, build_snapshot_bytes_with, is_snapshot_version, save_snapshot,
    save_snapshot_with, write_snapshot, AttachMode, Snapshot, SnapshotOptions, SnapshotPeek,
    SNAPSHOT_VERSION, SNAPSHOT_VERSION_PATHS,
};

pub(crate) const MAGIC: &[u8; 4] = b"WPLX";
const VERSION: u32 = 1;
const NO_TEXT: u32 = u32::MAX;

/// Errors surfaced by [`read_store`].
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input does not start with the store magic.
    BadMagic,
    /// The store was written by an unknown format version.
    UnsupportedVersion(u32),
    /// Structurally invalid or checksum-mismatched content.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a whirlpool store (bad magic)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Serializes a document into the binary store format.
pub fn write_store(doc: &Document, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;

    // Body goes through the checksum accumulator.
    let mut out = Hashing {
        inner: w,
        hash: FNV_OFFSET,
    };

    let tags = doc.tags();
    out.put_u32(tags.len() as u32)?;
    for (_, name) in tags.iter() {
        out.put_bytes(name.as_bytes())?;
    }

    let element_count = doc.len() - 1; // synthetic root not stored
    out.put_u32(element_count as u32)?;
    for id in doc.elements() {
        let node = doc.node(id);
        out.put_u32(node.tag.index() as u32)?;
        out.put_u32(node.parent.expect("elements have parents").index() as u32)?;
        match &node.text {
            Some(text) => out.put_bytes(text.as_bytes())?,
            None => out.put_u32(NO_TEXT)?,
        }
        let attr_count =
            u16::try_from(node.attributes.len()).expect("more than u16::MAX attributes");
        out.put_u16(attr_count)?;
        for (name, value) in &node.attributes {
            out.put_u32(name.index() as u32)?;
            out.put_bytes(value.as_bytes())?;
        }
    }

    let checksum = out.hash;
    out.inner.write_all(&checksum.to_le_bytes())?;
    Ok(())
}

/// Deserializes a document from the binary store format, verifying the
/// checksum.
pub fn read_store(r: &mut impl Read) -> Result<Document, StoreError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = read_u32_plain(r)?;
    if is_snapshot_version(version) {
        // Version-2/3 snapshot arriving through the streaming reader:
        // buffer the remainder, validate it as a snapshot, and rebuild
        // the arena. (Callers that want zero-copy access attach with
        // [`Snapshot::attach`] instead.)
        let mut rest = Vec::new();
        r.read_to_end(&mut rest)?;
        let mut full = Vec::with_capacity(8 + rest.len());
        full.extend_from_slice(MAGIC);
        full.extend_from_slice(&version.to_le_bytes());
        full.extend_from_slice(&rest);
        return Ok(Snapshot::from_bytes(&full)?.to_document());
    }
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }

    let mut input = HashingReader {
        inner: r,
        hash: FNV_OFFSET,
    };

    // Tag table.
    let tag_count = input.get_u32()? as usize;
    let mut tag_names = Vec::with_capacity(tag_count.min(1 << 20));
    for _ in 0..tag_count {
        tag_names.push(input.get_string("tag name")?);
    }
    let tag_name = |id: u32| -> Result<&str, StoreError> {
        tag_names
            .get(id as usize)
            .map(String::as_str)
            .ok_or_else(|| StoreError::Corrupt(format!("tag id {id} out of range")))
    };

    // Nodes, replayed through the builder: nodes arrive in pre-order
    // with parent links, so an open-element stack reconstructs the tree
    // (and with it children lists and Dewey ids).
    let node_count = input.get_u32()? as usize;
    let mut builder = DocumentBuilder::new();
    // Stack of currently open node ids (as they were in the original
    // document: element i gets id i+1, the root is 0).
    let mut open: Vec<u32> = Vec::new();
    for i in 0..node_count {
        let this_id = i as u32 + 1;
        let tag = input.get_u32()?;
        let parent = input.get_u32()?;
        // Close elements until the parent is on top (0 = document root,
        // i.e. empty stack).
        while open.last().copied().unwrap_or(0) != parent {
            if open.pop().is_none() {
                return Err(StoreError::Corrupt(format!(
                    "node {this_id} claims parent {parent}, which is not an open ancestor"
                )));
            }
            builder.close();
        }
        builder.open(tag_name(tag)?);
        open.push(this_id);

        let text_len = input.get_u32()?;
        if text_len != NO_TEXT {
            let text = input.get_string_of(text_len as usize, "text")?;
            builder.text(&text);
        }
        let attr_count = input.get_u16()?;
        for _ in 0..attr_count {
            let name = input.get_u32()?;
            let value = input.get_string("attribute value")?;
            builder.attribute(tag_name(name)?, &value);
        }
    }
    while open.pop().is_some() {
        builder.close();
    }

    let computed = input.hash;
    let stored = read_u64_plain(r)?;
    if computed != stored {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }

    Ok(builder.finish())
}

/// Writes `doc` to `path`.
pub fn save_file(doc: &Document, path: impl AsRef<Path>) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    write_store(doc, &mut file)
}

/// Loads a document from `path`.
pub fn load_file(path: impl AsRef<Path>) -> Result<Document, StoreError> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    read_store(&mut file)
}

/// Does this file start with the store magic? (Cheap sniffing for CLIs
/// that accept both `.xml` and store files.)
pub fn is_store_file(path: impl AsRef<Path>) -> bool {
    store_version(path).is_some()
}

/// The format version of a store file (1 = v1 stream, 2/3 = snapshot —
/// see [`is_snapshot_version`]), or `None` if the file is missing or
/// does not carry the store magic. Cheap: reads 8 bytes.
pub fn store_version(path: impl AsRef<Path>) -> Option<u32> {
    let Ok(mut f) = std::fs::File::open(path) else {
        return None;
    };
    let mut head = [0u8; 8];
    f.read_exact(&mut head).ok()?;
    if &head[0..4] != MAGIC {
        return None;
    }
    Some(u32::from_le_bytes(head[4..8].try_into().ok()?))
}

// -- checksum plumbing ---------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

struct Hashing<'a, W: Write> {
    inner: &'a mut W,
    hash: u64,
}

impl<W: Write> Hashing<'_, W> {
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash = fnv(self.hash, bytes);
        self.inner.write_all(bytes)
    }

    fn put_u16(&mut self, v: u16) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.put_u32(u32::try_from(bytes.len()).expect("string exceeds u32 length"))?;
        self.put(bytes)
    }
}

struct HashingReader<'a, R: Read> {
    inner: &'a mut R,
    hash: u64,
}

impl<R: Read> HashingReader<'_, R> {
    fn get(&mut self, buf: &mut [u8]) -> Result<(), StoreError> {
        self.inner.read_exact(buf)?;
        self.hash = fnv(self.hash, buf);
        Ok(())
    }

    fn get_u16(&mut self) -> Result<u16, StoreError> {
        let mut b = [0u8; 2];
        self.get(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    fn get_u32(&mut self) -> Result<u32, StoreError> {
        let mut b = [0u8; 4];
        self.get(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn get_string(&mut self, what: &str) -> Result<String, StoreError> {
        let len = self.get_u32()? as usize;
        self.get_string_of(len, what)
    }

    fn get_string_of(&mut self, len: usize, what: &str) -> Result<String, StoreError> {
        // Guard against absurd lengths from corrupt input before
        // allocating.
        if len > 1 << 30 {
            return Err(StoreError::Corrupt(format!(
                "{what} length {len} is implausible"
            )));
        }
        let mut buf = vec![0u8; len];
        self.get(&mut buf)?;
        String::from_utf8(buf)
            .map_err(|_| StoreError::Corrupt(format!("{what} is not valid UTF-8")))
    }
}

fn read_u32_plain(r: &mut impl Read) -> Result<u32, StoreError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64_plain(r: &mut impl Read) -> Result<u64, StoreError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::{parse_document, write_document, WriteOptions};

    fn roundtrip(src: &str) -> Document {
        let doc = parse_document(src).unwrap();
        let mut buf = Vec::new();
        write_store(&doc, &mut buf).unwrap();
        let reloaded = read_store(&mut buf.as_slice()).unwrap();
        let opts = WriteOptions::default();
        assert_eq!(
            write_document(&doc, &opts),
            write_document(&reloaded, &opts)
        );
        reloaded
    }

    #[test]
    fn roundtrips_structures() {
        roundtrip("<a/>");
        roundtrip("<a><b>text</b><c x=\"1\" y=\"2\"><d/></c></a>");
        roundtrip("<a>mixed <b>inner</b> content</a>");
        roundtrip("<r><a/><a/><a/></r>");
        // A forest.
        roundtrip("<a/><b><c/></b><d/>");
        // Unicode.
        roundtrip("<données café=\"☕\">中文</données>");
    }

    #[test]
    fn roundtrips_generated_document_and_preserves_deweys() {
        let doc = whirlpool_xmark::generate(&whirlpool_xmark::GeneratorConfig::items(100));
        let mut buf = Vec::new();
        write_store(&doc, &mut buf).unwrap();
        let reloaded = read_store(&mut buf.as_slice()).unwrap();
        assert_eq!(doc.len(), reloaded.len());
        for id in doc.elements() {
            assert_eq!(doc.dewey(id), reloaded.dewey(id), "{id:?}");
            assert_eq!(doc.tag_str(id), reloaded.tag_str(id));
            assert_eq!(doc.text(id), reloaded.text(id));
        }
    }

    #[test]
    fn store_is_smaller_than_xml() {
        let doc = whirlpool_xmark::generate(&whirlpool_xmark::GeneratorConfig::items(200));
        let xml = write_document(&doc, &WriteOptions::default());
        let mut buf = Vec::new();
        write_store(&doc, &mut buf).unwrap();
        assert!(
            buf.len() < xml.len(),
            "store {} vs xml {}",
            buf.len(),
            xml.len()
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            read_store(&mut &b"NOPE\x01\x00\x00\x00"[..]),
            Err(StoreError::BadMagic)
        ));
        let mut buf = Vec::new();
        write_store(&parse_document("<a/>").unwrap(), &mut buf).unwrap();
        buf[4] = 99; // version
        assert!(matches!(
            read_store(&mut buf.as_slice()),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn detects_corruption_anywhere_in_the_body() {
        let doc = parse_document("<a><b>text</b><c x=\"1\"/></a>").unwrap();
        let mut clean = Vec::new();
        write_store(&doc, &mut clean).unwrap();
        // Flip one byte at a time (past the header) and require failure.
        let mut detected = 0;
        for i in 8..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[i] ^= 0x40;
            if read_store(&mut corrupt.as_slice()).is_err() {
                detected += 1;
            }
        }
        // Every single-byte flip must be detected (checksum or
        // structural validation).
        assert_eq!(detected, clean.len() - 8);
    }

    #[test]
    fn truncation_is_an_error() {
        let doc = parse_document("<a><b/></a>").unwrap();
        let mut buf = Vec::new();
        write_store(&doc, &mut buf).unwrap();
        for cut in [3, 7, 10, buf.len() - 1] {
            assert!(read_store(&mut &buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn file_helpers_and_sniffing() {
        let dir = std::env::temp_dir().join(format!("wpl-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.wpx");
        let doc = parse_document("<a><b>t</b></a>").unwrap();
        save_file(&doc, &path).unwrap();
        assert!(is_store_file(&path));
        let reloaded = load_file(&path).unwrap();
        assert_eq!(reloaded.len(), doc.len());

        let xml_path = dir.join("doc.xml");
        std::fs::write(&xml_path, "<a/>").unwrap();
        assert!(!is_store_file(&xml_path));
        assert!(!is_store_file(dir.join("missing.wpx")));
    }
}
