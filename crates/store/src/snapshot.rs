//! Version-2 **snapshot** format: the whole query-time state of a
//! document — tag table, structural columns, tag and value postings,
//! text and attribute payloads — flattened into little-endian, 8-byte
//! aligned arrays that an engine can use *directly out of a memory
//! mapping*. Attaching costs a header parse plus linear validation
//! passes (checksum + structural checks over flat integer arrays),
//! never an XML parse or an index build.
//!
//! # Layout (version 2, little-endian, all sections 8-byte aligned)
//!
//! ```text
//! 0    magic      "WPLX"                      4 bytes
//! 4    version    u32 = 2                     4 bytes
//! 8    nodes      u64  node count n (synthetic root included)
//! 16   tags       u64  tag-table size T
//! 24   total_len  u64  file length in bytes, trailing checksum included
//! 32   sections   16 × { offset u64, len u64 }   (256 bytes)
//! 288  payload    sections in table order, zero-padded to 8-byte
//!                 boundaries between sections:
//!        0  tag_offsets   u32[T+1]   name spans in tag_blob
//!        1  tag_blob      UTF-8
//!        2  parent        u32[n]     parent[0] = u32::MAX
//!        3  depth         u16[n]
//!        4  subtree_end   u32[n]
//!        5  tag_of        u32[n]
//!        6  post_offsets  u32[T+1]   postings spans in post_ids
//!        7  post_ids      u32[n-1]   every element in its tag's list
//!        8  value_groups  u32[5·G]   (tag, val_off, val_len, ids_off,
//!                                     ids_len), sorted by (tag, value)
//!        9  value_blob    UTF-8
//!        10 value_ids     u32[V]
//!        11 text_offsets  u32[n+1]   empty span = no text
//!        12 text_blob     UTF-8
//!        13 attr_offsets  u32[n+1]   entry (not byte) offsets
//!        14 attr_entries  u32[3·A]   (name_tag, val_off, val_len)
//!        15 attr_blob     UTF-8
//! end-8 checksum  u64  FNV-1a folded over the preceding bytes as
//!                 little-endian u64 words (the padded layout makes the
//!                 checksummed prefix an exact multiple of 8)
//! ```
//!
//! The `ShardSynopsis` is *derived* at attach time from the posting
//! offsets (per-tag counts) and the tag table — O(T) work, no extra
//! section.
//!
//! # Version 3: the stored path synopsis
//!
//! Version 3 is version 2 plus one extra section (index 16) holding a
//! serialized [`PathSynopsis`] — the bounded strong dataguide built at
//! snapshot-build time — together with the tag-count synopsis, in a
//! *self-contained, self-checksummed* byte stream:
//!
//! ```text
//! 16 path_synopsis   u64 elements
//!                    u64 tag count T'   (tags with ≥1 element)
//!                    T' × { u64 count, u64 name_len, UTF-8 name }
//!                    u64 depth_cap, u64 truncated (0/1), u64 path count P
//!                    P × { u64 count, u64 max_tf, u64 nsteps,
//!                          nsteps × u32 index into the T' tag list }
//!                    u64 FNV-1a (byte-wise) over the preceding
//!                        section bytes
//! ```
//!
//! The section is deliberately independent of every other section and
//! carries its own checksum so that [`Snapshot::peek`] can read *just
//! the header and this section* — no payload mapping, no whole-file
//! checksum pass — and still hand the collection layer
//! integrity-checked synopses. Version-2 files remain fully supported:
//! attach accepts both, and `peek` falls back to deriving tag counts
//! from the (structurally sanity-checked) tag table + posting offsets.
//!
//! Attach validates everything the mapped accessors later index with:
//! magic/version/length, the word-FNV checksum, section table sanity
//! (alignment, order, bounds), and structural invariants (monotone
//! offset tables, parents before children, subtree extents nested,
//! posting ids sorted and in range, UTF-8 blobs with offsets on char
//! boundaries). A file that passes cannot make the views panic or read
//! out of bounds; a file that fails yields [`StoreError`], never UB.

use crate::mmap::{Backing, Mapping, OwnedBytes};
use crate::{StoreError, FNV_OFFSET, FNV_PRIME, MAGIC};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use whirlpool_index::{
    ColumnsView, DocView, MappedDoc, MappedIndex, PathEntry, PathSynopsis, ShardSynopsis, TagIndex,
    TagIndexView, ATTR_ENTRY_STRIDE, VALUE_GROUP_STRIDE,
};
use whirlpool_xml::{Document, DocumentBuilder, NodeId, TagId};

/// The version-2 (base) snapshot format: no stored path synopsis.
pub const SNAPSHOT_VERSION: u32 = 2;
/// The version-3 format: version 2 plus the stored path-synopsis
/// section. This is what [`write_snapshot`] emits by default.
pub const SNAPSHOT_VERSION_PATHS: u32 = 3;

/// Is `version` an attachable snapshot version (as opposed to the v1
/// stream format or garbage)?
pub fn is_snapshot_version(version: u32) -> bool {
    version == SNAPSHOT_VERSION || version == SNAPSHOT_VERSION_PATHS
}

const SECTION_COUNT: usize = 16;
/// Sections in a v3 file: the 16 base sections + the path synopsis.
const SECTION_COUNT_V3: usize = 17;
/// Fixed header size: magic + version + 3 × u64 + the section table.
const HEADER_LEN: usize = 32 + SECTION_COUNT * 16;

fn section_count(version: u32) -> usize {
    if version >= SNAPSHOT_VERSION_PATHS {
        SECTION_COUNT_V3
    } else {
        SECTION_COUNT
    }
}

fn header_len(version: u32) -> usize {
    32 + section_count(version) * 16
}

// Section indices, in file order.
const SEC_TAG_OFFSETS: usize = 0;
const SEC_TAG_BLOB: usize = 1;
const SEC_PARENT: usize = 2;
const SEC_DEPTH: usize = 3;
const SEC_SUBTREE_END: usize = 4;
const SEC_TAG_OF: usize = 5;
const SEC_POST_OFFSETS: usize = 6;
const SEC_POST_IDS: usize = 7;
const SEC_VALUE_GROUPS: usize = 8;
const SEC_VALUE_BLOB: usize = 9;
const SEC_VALUE_IDS: usize = 10;
const SEC_TEXT_OFFSETS: usize = 11;
const SEC_TEXT_BLOB: usize = 12;
const SEC_ATTR_OFFSETS: usize = 13;
const SEC_ATTR_ENTRIES: usize = 14;
const SEC_ATTR_BLOB: usize = 15;
const SEC_PATH_SYNOPSIS: usize = 16; // v3 only

const NO_PARENT: u32 = u32::MAX;

#[inline]
fn align8(x: usize) -> usize {
    (x + 7) & !7
}

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

/// FNV-1a folded over `bytes` as little-endian u64 words. `bytes.len()`
/// must be a multiple of 8 (the format guarantees it). Word folding
/// keeps every byte significant while hashing ~8× faster than the
/// byte-at-a-time v1 accumulator — attach-time verification of a
/// multi-megabyte snapshot stays in the low milliseconds.
fn fnv_words(bytes: &[u8]) -> u64 {
    debug_assert_eq!(bytes.len() % 8, 0);
    let mut hash = FNV_OFFSET;
    for chunk in bytes.chunks_exact(8) {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        hash = (hash ^ word).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Byte-at-a-time FNV-1a — the path-synopsis section's *internal*
/// checksum. The section's serial encoding is not 8-byte aligned (tag
/// names have arbitrary lengths), so it cannot use the word-folded
/// variant; it is small enough (a few KB) that byte hashing is free.
fn fnv_bytes(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(FNV_OFFSET, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

// -----------------------------------------------------------------------
// Writer
// -----------------------------------------------------------------------

fn push_u32s(buf: &mut Vec<u8>, values: impl IntoIterator<Item = u32>) {
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn as_u32(len: usize, what: &str) -> u32 {
    u32::try_from(len).unwrap_or_else(|_| panic!("{what} exceeds u32 range ({len})"))
}

/// What [`write_snapshot`] emits.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotOptions {
    /// Store the bounded path synopsis (version 3). Disabling writes a
    /// byte-identical version-2 file for compatibility with older
    /// readers.
    pub path_synopsis: bool,
}

impl Default for SnapshotOptions {
    fn default() -> Self {
        SnapshotOptions {
            path_synopsis: true,
        }
    }
}

/// Serializes the path-synopsis section: the tag-count synopsis plus
/// the bounded dataguide, self-contained and self-checksummed so
/// [`Snapshot::peek`] can read it without touching any other section.
fn encode_path_section(doc: &Document, index: &TagIndex, paths: &PathSynopsis) -> Vec<u8> {
    let tag_count = doc.tags().len();
    let mut out = Vec::new();
    out.extend_from_slice(&((doc.len() - 1) as u64).to_le_bytes());

    // Tags with at least one element, in tag-id order; path steps
    // reference positions in this list.
    let mut emitted: Vec<(usize, &str, u64)> = Vec::new(); // (emit idx, name, count)
    for t in 0..tag_count {
        let count = index.nodes_with_tag(TagId::from_index(t)).len() as u64;
        if count > 0 {
            let idx = emitted.len();
            emitted.push((idx, doc.tag_name(TagId::from_index(t)), count));
        }
    }
    out.extend_from_slice(&(emitted.len() as u64).to_le_bytes());
    for &(_, name, count) in &emitted {
        out.extend_from_slice(&count.to_le_bytes());
        out.extend_from_slice(&(name.len() as u64).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    let emit_idx = |name: &str| -> u32 {
        emitted
            .iter()
            .find(|(_, n, _)| *n == name)
            .map(|&(i, _, _)| i as u32)
            .expect("every path tag has at least one element")
    };

    out.extend_from_slice(&u64::from(paths.depth_cap()).to_le_bytes());
    out.extend_from_slice(&u64::from(paths.truncated()).to_le_bytes());
    out.extend_from_slice(&(paths.len() as u64).to_le_bytes());
    for entry in paths.entries() {
        out.extend_from_slice(&entry.count.to_le_bytes());
        out.extend_from_slice(&entry.max_tf.to_le_bytes());
        out.extend_from_slice(&(entry.steps.len() as u64).to_le_bytes());
        for &step in &entry.steps {
            let name = &paths.tag_names()[step as usize];
            out.extend_from_slice(&emit_idx(name).to_le_bytes());
        }
    }
    let checksum = fnv_bytes(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Bounds-checked serial reader over the path-synopsis section.
struct SectionReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    fn u64(&mut self) -> Result<u64, StoreError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt("path synopsis: truncated u64"))?;
        let v = u64::from_le_bytes(self.bytes[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        let end = self
            .pos
            .checked_add(4)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt("path synopsis: truncated u32"))?;
        let v = u32::from_le_bytes(self.bytes[self.pos..end].try_into().expect("4 bytes"));
        self.pos = end;
        Ok(v)
    }

    fn str_of(&mut self, len: usize, what: &str) -> Result<&'a str, StoreError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("path synopsis: {what} out of bounds")))?;
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| corrupt(format!("path synopsis: {what} is not valid UTF-8")))?;
        self.pos = end;
        Ok(s)
    }
}

/// Parses (and checksum-verifies) the path-synopsis section. Returns
/// the tag-count synopsis and the dataguide it carries.
fn parse_path_section(bytes: &[u8]) -> Result<(ShardSynopsis, PathSynopsis), StoreError> {
    if bytes.len() < 8 {
        return Err(corrupt("path synopsis: section too short"));
    }
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    let computed = fnv_bytes(&bytes[..bytes.len() - 8]);
    if stored != computed {
        return Err(corrupt(format!(
            "path synopsis: checksum mismatch (stored {stored:#x}, computed {computed:#x})"
        )));
    }
    let mut r = SectionReader {
        bytes: &bytes[..bytes.len() - 8],
        pos: 0,
    };
    let elements = r.u64()?;
    let tag_count = r.u64()? as usize;
    if tag_count > 1 << 24 {
        return Err(corrupt("path synopsis: implausible tag count"));
    }
    let mut tags: Vec<(Box<str>, u64)> = Vec::with_capacity(tag_count);
    for _ in 0..tag_count {
        let count = r.u64()?;
        let name_len = r.u64()? as usize;
        let name = r.str_of(name_len, "tag name")?;
        tags.push((Box::from(name), count));
    }
    let depth_cap =
        u32::try_from(r.u64()?).map_err(|_| corrupt("path synopsis: implausible depth cap"))?;
    let truncated = match r.u64()? {
        0 => false,
        1 => true,
        v => return Err(corrupt(format!("path synopsis: bad truncated flag {v}"))),
    };
    let path_count = r.u64()? as usize;
    if path_count > 1 << 24 {
        return Err(corrupt("path synopsis: implausible path count"));
    }
    let mut entries: Vec<PathEntry> = Vec::with_capacity(path_count);
    for _ in 0..path_count {
        let count = r.u64()?;
        let max_tf = r.u64()?;
        let nsteps = r.u64()? as usize;
        if nsteps > 1 << 16 {
            return Err(corrupt("path synopsis: implausible path depth"));
        }
        let mut steps = Vec::with_capacity(nsteps);
        for _ in 0..nsteps {
            let s = r.u32()?;
            if s as usize >= tag_count {
                return Err(corrupt("path synopsis: step references a tag out of range"));
            }
            steps.push(s);
        }
        entries.push(PathEntry {
            steps,
            count,
            max_tf,
        });
    }
    if r.pos != r.bytes.len() {
        return Err(corrupt("path synopsis: trailing bytes after the paths"));
    }
    let names: Vec<Box<str>> = tags.iter().map(|(n, _)| n.clone()).collect();
    let synopsis = ShardSynopsis::from_counts(tags, elements);
    let paths = PathSynopsis::from_parts(names, entries, depth_cap, truncated);
    Ok((synopsis, paths))
}

/// Serializes `doc` + `index` into the default (version-3) snapshot
/// byte layout.
pub fn build_snapshot_bytes(doc: &Document, index: &TagIndex) -> Vec<u8> {
    build_snapshot_bytes_with(doc, index, &SnapshotOptions::default())
}

/// [`build_snapshot_bytes`] with explicit options (version 2 when the
/// path synopsis is disabled).
pub fn build_snapshot_bytes_with(
    doc: &Document,
    index: &TagIndex,
    opts: &SnapshotOptions,
) -> Vec<u8> {
    let n = doc.len();
    let columns = index.columns().view();
    assert_eq!(columns.len(), n, "index built for a different document");
    let tag_count = doc.tags().len();

    let mut sections: Vec<Vec<u8>> = vec![Vec::new(); SECTION_COUNT];

    // Tag table.
    {
        let (offsets, blob) = (&mut Vec::new(), &mut Vec::new());
        let mut off = 0u32;
        offsets.push(0u32);
        for (_, name) in doc.tags().iter() {
            blob.extend_from_slice(name.as_bytes());
            off += as_u32(name.len(), "tag name");
            offsets.push(off);
        }
        push_u32s(&mut sections[SEC_TAG_OFFSETS], offsets.iter().copied());
        sections[SEC_TAG_BLOB] = std::mem::take(blob);
    }

    // Structural columns.
    push_u32s(
        &mut sections[SEC_PARENT],
        columns.parent_slice().iter().copied(),
    );
    for &d in columns.depth_slice() {
        sections[SEC_DEPTH].extend_from_slice(&d.to_le_bytes());
    }
    push_u32s(
        &mut sections[SEC_SUBTREE_END],
        columns.subtree_end_slice().iter().copied(),
    );

    // Per-node tags.
    push_u32s(
        &mut sections[SEC_TAG_OF],
        (0..n).map(|i| doc.tag(NodeId::from_index(i)).index() as u32),
    );

    // Tag postings.
    {
        let mut total = 0u32;
        let mut offsets = Vec::with_capacity(tag_count + 1);
        offsets.push(0u32);
        for t in 0..tag_count {
            let ids = index.nodes_with_tag(TagId::from_index(t));
            push_u32s(
                &mut sections[SEC_POST_IDS],
                ids.iter().map(|id| id.index() as u32),
            );
            total += as_u32(ids.len(), "posting list");
            offsets.push(total);
        }
        push_u32s(&mut sections[SEC_POST_OFFSETS], offsets);
    }

    // Value postings, (tag, value)-sorted groups.
    {
        let (mut val_off, mut ids_off) = (0u32, 0u32);
        for (tag, value, ids) in index.value_posting_groups() {
            let val_len = as_u32(value.len(), "value");
            let ids_len = as_u32(ids.len(), "value posting list");
            push_u32s(
                &mut sections[SEC_VALUE_GROUPS],
                [tag.index() as u32, val_off, val_len, ids_off, ids_len],
            );
            sections[SEC_VALUE_BLOB].extend_from_slice(value.as_bytes());
            push_u32s(
                &mut sections[SEC_VALUE_IDS],
                ids.iter().map(|id| id.index() as u32),
            );
            val_off += val_len;
            ids_off += ids_len;
        }
    }

    // Text payload.
    {
        let mut off = 0u32;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for i in 0..n {
            if let Some(text) = doc.text(NodeId::from_index(i)) {
                sections[SEC_TEXT_BLOB].extend_from_slice(text.as_bytes());
                off += as_u32(text.len(), "text");
            }
            offsets.push(off);
        }
        push_u32s(&mut sections[SEC_TEXT_OFFSETS], offsets);
    }

    // Attribute payload.
    {
        let (mut entries, mut val_off) = (0u32, 0u32);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for i in 0..n {
            for (name, value) in &doc.node(NodeId::from_index(i)).attributes {
                let val_len = as_u32(value.len(), "attribute value");
                push_u32s(
                    &mut sections[SEC_ATTR_ENTRIES],
                    [name.index() as u32, val_off, val_len],
                );
                sections[SEC_ATTR_BLOB].extend_from_slice(value.as_bytes());
                val_off += val_len;
                entries += 1;
            }
            offsets.push(entries);
        }
        push_u32s(&mut sections[SEC_ATTR_OFFSETS], offsets);
    }

    // The v3 extra section: the stored synopses.
    let version = if opts.path_synopsis {
        let paths = PathSynopsis::build(doc);
        sections.push(encode_path_section(doc, index, &paths));
        SNAPSHOT_VERSION_PATHS
    } else {
        SNAPSHOT_VERSION
    };

    // Lay out: header, then padded sections, then the checksum.
    let mut offsets = vec![0usize; sections.len()];
    let mut cursor = header_len(version);
    for (i, s) in sections.iter().enumerate() {
        offsets[i] = cursor;
        cursor = align8(cursor + s.len());
    }
    let total_len = cursor + 8;

    let mut out = Vec::with_capacity(total_len);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(tag_count as u64).to_le_bytes());
    out.extend_from_slice(&(total_len as u64).to_le_bytes());
    for (i, s) in sections.iter().enumerate() {
        out.extend_from_slice(&(offsets[i] as u64).to_le_bytes());
        out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    }
    for s in &sections {
        out.extend_from_slice(s);
        out.resize(align8(out.len()), 0);
    }
    debug_assert_eq!(out.len(), total_len - 8);
    let checksum = fnv_words(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Writes the default (version-3) snapshot of `doc` + `index` to `w`.
pub fn write_snapshot(doc: &Document, index: &TagIndex, w: &mut impl Write) -> io::Result<()> {
    w.write_all(&build_snapshot_bytes(doc, index))
}

/// Writes the default (version-3) snapshot of `doc` + `index` to `path`.
pub fn save_snapshot(doc: &Document, index: &TagIndex, path: impl AsRef<Path>) -> io::Result<()> {
    let bytes = build_snapshot_bytes(doc, index);
    std::fs::write(path, bytes)
}

/// [`save_snapshot`] with explicit [`SnapshotOptions`].
pub fn save_snapshot_with(
    doc: &Document,
    index: &TagIndex,
    path: impl AsRef<Path>,
    opts: &SnapshotOptions,
) -> io::Result<()> {
    let bytes = build_snapshot_bytes_with(doc, index, opts);
    std::fs::write(path, bytes)
}

// -----------------------------------------------------------------------
// Attach
// -----------------------------------------------------------------------

/// How [`Snapshot::attach_with`] backs the file bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachMode {
    /// `mmap` when possible, silently fall back to a buffered read.
    Auto,
    /// Require `mmap`; error if the platform or file refuses.
    Mmap,
    /// Always read into (8-byte aligned) heap memory. Also forced by
    /// the `WHIRLPOOL_NO_MMAP` environment variable under `Auto`.
    Read,
}

#[derive(Clone, Copy)]
struct Layout {
    version: u32,
    n: usize,
    tag_count: usize,
    /// Section table; slot [`SEC_PATH_SYNOPSIS`] is `(0, 0)` in a
    /// version-2 file.
    sections: [(usize, usize); SECTION_COUNT_V3],
}

/// An attached snapshot (version 2 or 3): validated bytes
/// (memory-mapped or read) plus the section layout.
/// [`doc_view`](Snapshot::doc_view) and
/// [`index_view`](Snapshot::index_view) assemble zero-copy views on
/// demand; the synopsis is derived once at attach.
pub struct Snapshot {
    backing: Backing,
    layout: Layout,
    synopsis: ShardSynopsis,
    /// The stored dataguide, when the file is version 3.
    paths: Option<PathSynopsis>,
    /// Where the file was attached from; `None` for
    /// [`from_bytes`](Snapshot::from_bytes). Lets a collection re-home
    /// an already-attached snapshot onto a lazy (re-attachable) backing.
    source_path: Option<PathBuf>,
}

impl Snapshot {
    /// Attaches to a snapshot file: `mmap` when available, buffered
    /// read otherwise (or when `WHIRLPOOL_NO_MMAP` is set). Validates
    /// the checksum and every structural invariant before returning.
    pub fn attach(path: impl AsRef<Path>) -> Result<Snapshot, StoreError> {
        Snapshot::attach_with(path, AttachMode::Auto)
    }

    /// [`attach`](Snapshot::attach) with an explicit backing policy.
    pub fn attach_with(path: impl AsRef<Path>, mode: AttachMode) -> Result<Snapshot, StoreError> {
        let path = path.as_ref();
        let mut file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| corrupt("file too large for this platform"))?;
        let force_read = matches!(mode, AttachMode::Read)
            || (matches!(mode, AttachMode::Auto)
                && std::env::var_os("WHIRLPOOL_NO_MMAP").is_some());
        let backing = if force_read {
            Backing::Owned(OwnedBytes::read_from(&mut file, len)?)
        } else {
            match Mapping::map(&file, len) {
                Ok(m) => Backing::Mapped(m),
                Err(e) if mode == AttachMode::Mmap => return Err(StoreError::Io(e)),
                Err(_) => Backing::Owned(OwnedBytes::read_from(&mut file, len)?),
            }
        };
        let mut snapshot = Snapshot::from_backing(backing)?;
        snapshot.source_path = Some(path.to_path_buf());
        Ok(snapshot)
    }

    /// Builds a snapshot from in-memory bytes (copied into aligned
    /// storage) — the streaming-reader and test entry point.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, StoreError> {
        Snapshot::from_backing(Backing::Owned(OwnedBytes::from_slice(bytes)))
    }

    fn from_backing(backing: Backing) -> Result<Snapshot, StoreError> {
        let layout = validate(backing.bytes())?;
        let mut snapshot = Snapshot {
            backing,
            layout,
            synopsis: ShardSynopsis::default(),
            paths: None,
            source_path: None,
        };
        snapshot.synopsis = snapshot.derive_synopsis();
        if layout.version >= SNAPSHOT_VERSION_PATHS {
            let (_, paths) = parse_path_section(snapshot.section(SEC_PATH_SYNOPSIS))?;
            snapshot.paths = Some(paths);
        }
        Ok(snapshot)
    }

    /// Per-tag element counts from the posting offsets + tag table —
    /// O(tag count), the only non-view state rebuilt at attach.
    fn derive_synopsis(&self) -> ShardSynopsis {
        let doc = self.mapped_doc();
        let offsets = self.u32s(SEC_POST_OFFSETS);
        let counts = (0..self.layout.tag_count).filter_map(|t| {
            let count = u64::from(offsets[t + 1] - offsets[t]);
            (count > 0).then(|| (Box::<str>::from(doc.tag_name(TagId::from_index(t))), count))
        });
        ShardSynopsis::from_counts(counts, (self.layout.n - 1) as u64)
    }

    fn section(&self, i: usize) -> &[u8] {
        let (off, len) = self.layout.sections[i];
        &self.backing.bytes()[off..off + len]
    }

    fn u32s(&self, i: usize) -> &[u32] {
        let bytes = self.section(i);
        // SAFETY: validate() checked 8-byte section alignment (the
        // backing base is at least 8-byte aligned) and a length that is
        // a multiple of 4; any u32 bit pattern is valid.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) }
    }

    fn u16s(&self, i: usize) -> &[u16] {
        let bytes = self.section(i);
        // SAFETY: as u32s(), with a length multiple of 2.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u16>(), bytes.len() / 2) }
    }

    fn str_of(&self, i: usize) -> &str {
        std::str::from_utf8(self.section(i)).expect("blob validated as UTF-8 at attach")
    }

    fn columns_view(&self) -> ColumnsView<'_> {
        ColumnsView::from_raw(
            self.u32s(SEC_PARENT),
            self.u16s(SEC_DEPTH),
            self.u32s(SEC_SUBTREE_END),
        )
    }

    fn mapped_doc(&self) -> MappedDoc<'_> {
        MappedDoc::from_raw(
            self.columns_view(),
            self.u32s(SEC_TAG_OFFSETS),
            self.str_of(SEC_TAG_BLOB),
            self.u32s(SEC_TAG_OF),
            self.u32s(SEC_TEXT_OFFSETS),
            self.str_of(SEC_TEXT_BLOB),
            self.u32s(SEC_ATTR_OFFSETS),
            self.u32s(SEC_ATTR_ENTRIES),
            self.str_of(SEC_ATTR_BLOB),
        )
    }

    fn mapped_index(&self) -> MappedIndex<'_> {
        MappedIndex::from_raw(
            self.columns_view(),
            self.u32s(SEC_POST_OFFSETS),
            self.u32s(SEC_POST_IDS),
            self.u32s(SEC_VALUE_GROUPS),
            self.str_of(SEC_VALUE_BLOB),
            self.u32s(SEC_VALUE_IDS),
        )
    }

    /// The document view (tags, text, attributes) over the mapped
    /// arrays — zero-copy, `Copy`, engine-ready.
    pub fn doc_view(&self) -> DocView<'_> {
        DocView::Mapped(self.mapped_doc())
    }

    /// The index view (postings, value postings, structural columns)
    /// over the mapped arrays.
    pub fn index_view(&self) -> TagIndexView<'_> {
        TagIndexView::Mapped(self.mapped_index())
    }

    /// The shard synopsis derived at attach.
    pub fn synopsis(&self) -> &ShardSynopsis {
        &self.synopsis
    }

    /// The stored path synopsis (dataguide), when the file is version 3.
    pub fn path_synopsis(&self) -> Option<&PathSynopsis> {
        self.paths.as_ref()
    }

    /// The file this snapshot was attached from; `None` when built from
    /// in-memory bytes.
    pub fn source_path(&self) -> Option<&Path> {
        self.source_path.as_deref()
    }

    /// The snapshot format version (2 or 3).
    pub fn version(&self) -> u32 {
        self.layout.version
    }

    /// Total nodes, synthetic root included.
    pub fn node_count(&self) -> usize {
        self.layout.n
    }

    /// Tag-table size.
    pub fn tag_count(&self) -> usize {
        self.layout.tag_count
    }

    /// File size in bytes.
    pub fn file_len(&self) -> usize {
        self.backing.bytes().len()
    }

    /// True when the backing is a real memory mapping (as opposed to
    /// the buffered-read fallback).
    pub fn is_mapped(&self) -> bool {
        self.backing.is_mapped()
    }

    /// Rebuilds an owned [`Document`] arena from the snapshot — the
    /// compatibility path for callers that need the v1-style in-memory
    /// tree (XML re-serialization, `read_store` dispatch). This is
    /// O(corpus); query paths should use the views instead.
    pub fn to_document(&self) -> Document {
        let doc = self.mapped_doc();
        let parent = self.u32s(SEC_PARENT);
        let mut builder = DocumentBuilder::new();
        let mut open: Vec<u32> = Vec::new();
        for (i, &par) in parent.iter().enumerate().skip(1) {
            let node = NodeId::from_index(i);
            // Pre-order with parent links: close until the parent is on
            // top (0 = document root, i.e. empty stack).
            while open.last().copied().unwrap_or(0) != par {
                open.pop();
                builder.close();
            }
            builder.open(doc.tag_str(node));
            open.push(i as u32);
            if let Some(text) = doc.text(node) {
                builder.text(text);
            }
            for (name, value) in doc.attributes(node) {
                builder.attribute(name, value);
            }
        }
        while open.pop().is_some() {
            builder.close();
        }
        builder.finish()
    }

    /// Reads *only* the header and synopsis information of a snapshot
    /// file — no payload mapping, no whole-file checksum pass. On a
    /// version-3 file this reads the self-checksummed path-synopsis
    /// section; on version 2 it reads the tag table + posting offsets
    /// (structurally sanity-checked) and derives tag counts.
    ///
    /// A peek is the collection layer's admission ticket: it yields the
    /// synopses needed to *order and prune* shards without attaching
    /// them. It is not a substitute for [`attach`](Snapshot::attach) —
    /// full validation still happens when (if) the shard is visited.
    pub fn peek(path: impl AsRef<Path>) -> Result<SnapshotPeek, StoreError> {
        let mut file = std::fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut head = [0u8; 32];
        file.read_exact(&mut head)?;
        if &head[0..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        if !is_snapshot_version(version) {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let n = read_u64_at(&head, 8) as usize;
        let tag_count = read_u64_at(&head, 16) as usize;
        let total_len = read_u64_at(&head, 24) as usize;
        if total_len as u64 != file_len {
            return Err(corrupt(format!(
                "length mismatch: header says {total_len}, file is {file_len}"
            )));
        }
        if n == 0 || n > u32::MAX as usize || tag_count == 0 || tag_count > u32::MAX as usize {
            return Err(corrupt(format!(
                "implausible node count {n} / tag count {tag_count}"
            )));
        }
        let nsec = section_count(version);
        let hlen = header_len(version);
        if total_len < hlen + 8 {
            return Err(corrupt("file too short for its section table"));
        }
        let mut table = vec![0u8; nsec * 16];
        file.read_exact(&mut table)?;
        let mut sections = vec![(0usize, 0usize); nsec];
        let mut expected_off = hlen;
        for (i, slot) in sections.iter_mut().enumerate() {
            let off = read_u64_at(&table, i * 16) as usize;
            let len = read_u64_at(&table, i * 16 + 8) as usize;
            if off != expected_off {
                return Err(corrupt(format!(
                    "section {i}: offset {off}, expected {expected_off}"
                )));
            }
            if len > total_len - 8 - off {
                return Err(corrupt(format!("section {i}: length {len} out of bounds")));
            }
            *slot = (off, len);
            expected_off = align8(off + len);
        }
        if expected_off != total_len - 8 {
            return Err(corrupt(format!(
                "sections end at {expected_off}, checksum at {}",
                total_len - 8
            )));
        }

        let mut read_section = |i: usize| -> Result<Vec<u8>, StoreError> {
            let (off, len) = sections[i];
            file.seek(SeekFrom::Start(off as u64))?;
            let mut buf = vec![0u8; len];
            file.read_exact(&mut buf)?;
            Ok(buf)
        };

        let (synopsis, paths) = if version >= SNAPSHOT_VERSION_PATHS {
            let bytes = read_section(SEC_PATH_SYNOPSIS)?;
            let (synopsis, paths) = parse_path_section(&bytes)?;
            (synopsis, Some(paths))
        } else {
            // Version 2: derive tag counts from the tag table and the
            // posting offsets. These sections carry no checksum of
            // their own, so check the structural invariants a ceiling
            // computation depends on.
            let le_u32s = |b: &[u8], what: &str| -> Result<Vec<u32>, StoreError> {
                if b.len() % 4 != 0 {
                    return Err(corrupt(format!("{what}: length not a u32 multiple")));
                }
                Ok(b.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect())
            };
            let tag_offsets = le_u32s(&read_section(SEC_TAG_OFFSETS)?, "tag offsets")?;
            if tag_offsets.len() != tag_count + 1 {
                return Err(corrupt("tag offsets: wrong length for tag count"));
            }
            let blob_bytes = read_section(SEC_TAG_BLOB)?;
            let tag_blob = std::str::from_utf8(&blob_bytes)
                .map_err(|_| corrupt("tag blob is not valid UTF-8"))?;
            check_offsets(&tag_offsets, tag_blob.len(), Some(tag_blob), "tag offsets")?;
            let post_offsets = le_u32s(&read_section(SEC_POST_OFFSETS)?, "posting offsets")?;
            if post_offsets.len() != tag_count + 1 {
                return Err(corrupt("posting offsets: wrong length for tag count"));
            }
            check_offsets(&post_offsets, n - 1, None, "posting offsets")?;
            let counts = (0..tag_count).filter_map(|t| {
                let count = u64::from(post_offsets[t + 1] - post_offsets[t]);
                let name = &tag_blob[tag_offsets[t] as usize..tag_offsets[t + 1] as usize];
                (count > 0).then(|| (Box::<str>::from(name), count))
            });
            (ShardSynopsis::from_counts(counts, (n - 1) as u64), None)
        };
        Ok(SnapshotPeek {
            version,
            nodes: n as u64,
            file_len,
            synopsis,
            paths,
        })
    }
}

/// What [`Snapshot::peek`] learns about a snapshot file without
/// attaching it.
#[derive(Debug, Clone)]
pub struct SnapshotPeek {
    /// Snapshot format version (2 or 3).
    pub version: u32,
    /// Total nodes, synthetic root included.
    pub nodes: u64,
    /// File size in bytes.
    pub file_len: u64,
    /// Tag-count synopsis (stored in v3, derived from headers in v2).
    pub synopsis: ShardSynopsis,
    /// Stored dataguide; `None` for version-2 files.
    pub paths: Option<PathSynopsis>,
}

// -----------------------------------------------------------------------
// Validation
// -----------------------------------------------------------------------

fn read_u64_at(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
}

/// Checks that every offset in `offsets` is monotone nondecreasing,
/// starts at 0, ends at `end`, and (when `blob` is given) lands on a
/// char boundary of the blob.
fn check_offsets(
    offsets: &[u32],
    end: usize,
    blob: Option<&str>,
    what: &str,
) -> Result<(), StoreError> {
    if offsets.first() != Some(&0) {
        return Err(corrupt(format!("{what}: first offset must be 0")));
    }
    if offsets.last().copied().unwrap_or(0) as usize != end {
        return Err(corrupt(format!(
            "{what}: final offset {} does not cover the section (expected {end})",
            offsets.last().copied().unwrap_or(0)
        )));
    }
    let mut prev = 0u32;
    for &o in offsets {
        if o < prev {
            return Err(corrupt(format!("{what}: offsets must be nondecreasing")));
        }
        if let Some(blob) = blob {
            if !blob.is_char_boundary(o as usize) {
                return Err(corrupt(format!("{what}: offset {o} splits a UTF-8 char")));
            }
        }
        prev = o;
    }
    Ok(())
}

/// Checks that `ids` is strictly ascending with every id in `[1, n)`.
fn check_ids(ids: &[u32], n: usize, what: &str) -> Result<(), StoreError> {
    let mut prev = 0u32; // ids start at 1, so 0 is a safe floor
    for &id in ids {
        if id <= prev || id as usize >= n {
            return Err(corrupt(format!(
                "{what}: ids must be strictly ascending element ids (saw {id} after {prev}, n={n})"
            )));
        }
        prev = id;
    }
    Ok(())
}

fn utf8(bytes: &[u8], what: &str) -> Result<(), StoreError> {
    std::str::from_utf8(bytes)
        .map(|_| ())
        .map_err(|_| corrupt(format!("{what} is not valid UTF-8")))
}

/// Full attach-time validation. Returns the section layout only if the
/// file is byte-exact (checksum) *and* structurally sound, so the
/// mapped accessors can index without bounds surprises.
fn validate(bytes: &[u8]) -> Result<Layout, StoreError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(corrupt(format!(
            "file too short for a snapshot header ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[0..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if !is_snapshot_version(version) {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let nsec = section_count(version);
    let hlen = header_len(version);

    let n = read_u64_at(bytes, 8) as usize;
    let tag_count = read_u64_at(bytes, 16) as usize;
    let total_len = read_u64_at(bytes, 24) as usize;
    if total_len != bytes.len() {
        return Err(corrupt(format!(
            "length mismatch: header says {total_len}, file is {}",
            bytes.len()
        )));
    }
    if total_len % 8 != 0 {
        return Err(corrupt("file length must be a multiple of 8"));
    }
    if total_len < hlen + 8 {
        return Err(corrupt("file too short for its section table"));
    }
    if n == 0 || n > u32::MAX as usize || tag_count == 0 || tag_count > u32::MAX as usize {
        return Err(corrupt(format!(
            "implausible node count {n} / tag count {tag_count}"
        )));
    }

    // Checksum before structural checks: a bit flip anywhere (header
    // included) fails here.
    let stored = read_u64_at(bytes, total_len - 8);
    let computed = fnv_words(&bytes[..total_len - 8]);
    if stored != computed {
        return Err(corrupt(format!(
            "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }

    // Section table: in order, 8-aligned, padding-only gaps, in bounds.
    let mut sections = [(0usize, 0usize); SECTION_COUNT_V3];
    let mut expected_off = hlen;
    for (i, slot) in sections.iter_mut().take(nsec).enumerate() {
        let off = read_u64_at(bytes, 32 + i * 16) as usize;
        let len = read_u64_at(bytes, 40 + i * 16) as usize;
        if off != expected_off {
            return Err(corrupt(format!(
                "section {i}: offset {off}, expected {expected_off}"
            )));
        }
        if len > total_len - 8 - off {
            return Err(corrupt(format!("section {i}: length {len} out of bounds")));
        }
        *slot = (off, len);
        expected_off = align8(off + len);
    }
    if expected_off != total_len - 8 {
        return Err(corrupt(format!(
            "sections end at {expected_off}, checksum at {}",
            total_len - 8
        )));
    }

    // Expected section shapes.
    let expect = |i: usize, want: usize, what: &str| -> Result<(), StoreError> {
        if sections[i].1 != want {
            return Err(corrupt(format!(
                "{what}: section length {} (expected {want})",
                sections[i].1
            )));
        }
        Ok(())
    };
    expect(SEC_TAG_OFFSETS, 4 * (tag_count + 1), "tag offsets")?;
    expect(SEC_PARENT, 4 * n, "parent column")?;
    expect(SEC_DEPTH, 2 * n, "depth column")?;
    expect(SEC_SUBTREE_END, 4 * n, "subtree-end column")?;
    expect(SEC_TAG_OF, 4 * n, "tag-of column")?;
    expect(SEC_POST_OFFSETS, 4 * (tag_count + 1), "posting offsets")?;
    expect(SEC_POST_IDS, 4 * (n - 1), "posting ids")?;
    expect(SEC_TEXT_OFFSETS, 4 * (n + 1), "text offsets")?;
    expect(SEC_ATTR_OFFSETS, 4 * (n + 1), "attribute offsets")?;
    if sections[SEC_VALUE_GROUPS].1 % (4 * VALUE_GROUP_STRIDE) != 0 {
        return Err(corrupt("value groups: length not a group multiple"));
    }
    if sections[SEC_VALUE_IDS].1 % 4 != 0 {
        return Err(corrupt("value ids: length not a u32 multiple"));
    }
    if sections[SEC_ATTR_ENTRIES].1 % (4 * ATTR_ENTRY_STRIDE) != 0 {
        return Err(corrupt("attribute entries: length not an entry multiple"));
    }

    let sec = |i: usize| -> &[u8] { &bytes[sections[i].0..sections[i].0 + sections[i].1] };
    // SAFETY: offsets are 8-aligned above a base that is at least
    // 8-aligned (mmap page / Vec<u64>), lengths checked as multiples.
    let u32s = |i: usize| -> &[u32] {
        let b = sec(i);
        unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<u32>(), b.len() / 4) }
    };

    // Blobs must be UTF-8 before offsets can be boundary-checked.
    utf8(sec(SEC_TAG_BLOB), "tag blob")?;
    utf8(sec(SEC_VALUE_BLOB), "value blob")?;
    utf8(sec(SEC_TEXT_BLOB), "text blob")?;
    utf8(sec(SEC_ATTR_BLOB), "attribute blob")?;
    let tag_blob = std::str::from_utf8(sec(SEC_TAG_BLOB)).expect("just validated");
    let text_blob = std::str::from_utf8(sec(SEC_TEXT_BLOB)).expect("just validated");

    check_offsets(
        u32s(SEC_TAG_OFFSETS),
        sections[SEC_TAG_BLOB].1,
        Some(tag_blob),
        "tag offsets",
    )?;
    check_offsets(
        u32s(SEC_TEXT_OFFSETS),
        sections[SEC_TEXT_BLOB].1,
        Some(text_blob),
        "text offsets",
    )?;
    check_offsets(u32s(SEC_POST_OFFSETS), n - 1, None, "posting offsets")?;
    check_offsets(
        u32s(SEC_ATTR_OFFSETS),
        sections[SEC_ATTR_ENTRIES].1 / (4 * ATTR_ENTRY_STRIDE),
        None,
        "attribute offsets",
    )?;

    // Structural columns: parents precede children, depths chain,
    // subtree extents nest.
    let parent = u32s(SEC_PARENT);
    let depth = {
        let b = sec(SEC_DEPTH);
        // SAFETY: as u32s above, length 2n checked.
        unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<u16>(), b.len() / 2) }
    };
    let subtree_end = u32s(SEC_SUBTREE_END);
    if parent[0] != NO_PARENT || depth[0] != 0 || subtree_end[0] as usize != n {
        return Err(corrupt("root row must be (no-parent, depth 0, extent n)"));
    }
    for i in 1..n {
        let p = parent[i] as usize;
        if p >= i {
            return Err(corrupt(format!("node {i}: parent {p} does not precede it")));
        }
        if depth[i] != depth[p].wrapping_add(1) {
            return Err(corrupt(format!(
                "node {i}: depth does not chain from parent"
            )));
        }
        let end = subtree_end[i] as usize;
        if end <= i || end > subtree_end[p] as usize {
            return Err(corrupt(format!(
                "node {i}: subtree extent {end} not nested"
            )));
        }
    }

    // Per-node tags in range; postings sorted, in range, and consistent
    // with tag_of (which also makes the derived synopsis exact).
    let tag_of = u32s(SEC_TAG_OF);
    if tag_of.iter().any(|&t| t as usize >= tag_count) {
        return Err(corrupt("tag-of column references a tag out of range"));
    }
    let post_offsets = u32s(SEC_POST_OFFSETS);
    let post_ids = u32s(SEC_POST_IDS);
    for t in 0..tag_count {
        let list = &post_ids[post_offsets[t] as usize..post_offsets[t + 1] as usize];
        check_ids(list, n, "postings")?;
        if list.iter().any(|&id| tag_of[id as usize] as usize != t) {
            return Err(corrupt(format!(
                "postings for tag {t} disagree with tag-of"
            )));
        }
    }

    // Value groups: sorted keys, contiguous blob/id spans, sorted ids.
    let groups = u32s(SEC_VALUE_GROUPS);
    let value_blob = std::str::from_utf8(sec(SEC_VALUE_BLOB)).expect("just validated");
    let value_ids = u32s(SEC_VALUE_IDS);
    let mut prev_key: Option<(u32, &str)> = None;
    let (mut val_cursor, mut ids_cursor) = (0usize, 0usize);
    for g in groups.chunks_exact(VALUE_GROUP_STRIDE) {
        let (tag, val_off, val_len) = (g[0], g[1] as usize, g[2] as usize);
        let (ids_off, ids_len) = (g[3] as usize, g[4] as usize);
        if tag as usize >= tag_count {
            return Err(corrupt("value group references a tag out of range"));
        }
        if val_off != val_cursor || ids_off != ids_cursor {
            return Err(corrupt("value group spans must be contiguous"));
        }
        let val_end = val_off
            .checked_add(val_len)
            .filter(|&e| e <= value_blob.len())
            .ok_or_else(|| corrupt("value group text span out of bounds"))?;
        if !value_blob.is_char_boundary(val_off) || !value_blob.is_char_boundary(val_end) {
            return Err(corrupt("value group span splits a UTF-8 char"));
        }
        let ids_end = ids_off
            .checked_add(ids_len)
            .filter(|&e| e <= value_ids.len())
            .ok_or_else(|| corrupt("value group id span out of bounds"))?;
        let value = &value_blob[val_off..val_end];
        let key = (tag, value);
        if prev_key.is_some_and(|p| p >= key) {
            return Err(corrupt("value groups must be sorted by (tag, value)"));
        }
        prev_key = Some(key);
        check_ids(&value_ids[ids_off..ids_end], n, "value postings")?;
        val_cursor = val_end;
        ids_cursor = ids_end;
    }
    if val_cursor != value_blob.len() || ids_cursor != value_ids.len() {
        return Err(corrupt("value blob / ids not fully covered by groups"));
    }

    // Attribute entries: names in range, contiguous value spans.
    let attr_entries = u32s(SEC_ATTR_ENTRIES);
    let attr_blob_len = sections[SEC_ATTR_BLOB].1;
    let attr_blob = std::str::from_utf8(sec(SEC_ATTR_BLOB)).expect("just validated");
    let mut attr_cursor = 0usize;
    for e in attr_entries.chunks_exact(ATTR_ENTRY_STRIDE) {
        if e[0] as usize >= tag_count {
            return Err(corrupt("attribute name references a tag out of range"));
        }
        let (off, len) = (e[1] as usize, e[2] as usize);
        if off != attr_cursor {
            return Err(corrupt("attribute value spans must be contiguous"));
        }
        let end = off
            .checked_add(len)
            .filter(|&e| e <= attr_blob_len)
            .ok_or_else(|| corrupt("attribute value span out of bounds"))?;
        if !attr_blob.is_char_boundary(off) || !attr_blob.is_char_boundary(end) {
            return Err(corrupt("attribute value span splits a UTF-8 char"));
        }
        attr_cursor = end;
    }
    if attr_cursor != attr_blob_len {
        return Err(corrupt("attribute blob not fully covered by entries"));
    }

    // Version 3: the stored synopsis section must parse, pass its own
    // checksum, and agree with the postings on per-tag counts — a
    // ceiling computed from the section can then never contradict the
    // payload it summarizes.
    if version >= SNAPSHOT_VERSION_PATHS {
        let (off, len) = sections[SEC_PATH_SYNOPSIS];
        let (stored_syn, _) = parse_path_section(&bytes[off..off + len])?;
        if stored_syn.elements() != (n - 1) as u64 {
            return Err(corrupt(
                "path synopsis: element count disagrees with header",
            ));
        }
        let tag_offsets = u32s(SEC_TAG_OFFSETS);
        for t in 0..tag_count {
            let count = u64::from(post_offsets[t + 1] - post_offsets[t]);
            let name = &tag_blob[tag_offsets[t] as usize..tag_offsets[t + 1] as usize];
            if count > 0 && stored_syn.tag_count(name) != count {
                return Err(corrupt(format!(
                    "path synopsis: tag {name:?} count disagrees with postings"
                )));
            }
        }
    }

    Ok(Layout {
        version,
        n,
        tag_count,
        sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::parse_document;

    fn snapshot_of(src: &str) -> (Document, TagIndex, Vec<u8>) {
        let doc = parse_document(src).unwrap();
        let index = TagIndex::build(&doc);
        let bytes = build_snapshot_bytes(&doc, &index);
        (doc, index, bytes)
    }

    #[test]
    fn snapshot_views_mirror_the_source() {
        let (doc, index, bytes) =
            snapshot_of("<r><t a=\"1\" b=\"x y\">x</t><t>y</t><s><t>x</t><u/></s></r>");
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.node_count(), doc.len());
        let dv = snap.doc_view();
        let iv = snap.index_view();

        for i in 0..doc.len() {
            let node = NodeId::from_index(i);
            assert_eq!(dv.tag_str(node), doc.tag_str(node));
            assert_eq!(dv.text(node), doc.text(node));
            assert_eq!(dv.attribute(node, "a"), doc.attribute(node, "a"));
            assert_eq!(dv.attribute(node, "b"), doc.attribute(node, "b"));
            assert_eq!(dv.depth(node), doc.depth(node));
        }
        let t = doc.tag_id("t").unwrap();
        // Mapped and owned interners share ids: the snapshot writes the
        // document's own tag table in id order.
        assert_eq!(dv.tag_id("t"), Some(t));
        assert_eq!(iv.nodes_with_tag(t), index.nodes_with_tag(t));
        assert_eq!(
            iv.nodes_with_tag_value(t, "x"),
            index.nodes_with_tag_value(t, "x")
        );
        assert_eq!(iv.nodes_with_tag_value(t, "zz"), &[]);
        for n in doc.elements() {
            assert_eq!(iv.subtree_end(n), index.subtree_end(n));
            assert_eq!(
                iv.descendants_with_tag(n, t),
                index.descendants_with_tag(n, t)
            );
        }
    }

    #[test]
    fn synopsis_matches_a_fresh_build() {
        let (doc, _, bytes) = snapshot_of("<r><a><b/><b/></a><c>t</c></r>");
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        let fresh = ShardSynopsis::build(&doc);
        assert_eq!(snap.synopsis().elements(), fresh.elements());
        assert_eq!(snap.synopsis().distinct_tags(), fresh.distinct_tags());
        for (tag, count) in fresh.tags() {
            assert_eq!(snap.synopsis().tag_count(tag), count, "{tag}");
        }
    }

    #[test]
    fn to_document_round_trips() {
        use whirlpool_xml::{write_document, WriteOptions};
        for src in [
            "<a/>",
            "<a><b>text</b><c x=\"1\" y=\"2\"><d/></c></a>",
            "<a>mixed <b>inner</b> content</a>",
            "<données café=\"☕\">中文</données>",
        ] {
            let (doc, _, bytes) = snapshot_of(src);
            let rebuilt = Snapshot::from_bytes(&bytes).unwrap().to_document();
            let opts = WriteOptions::default();
            assert_eq!(write_document(&doc, &opts), write_document(&rebuilt, &opts));
        }
    }

    #[test]
    fn single_bit_flips_never_attach() {
        let (_, _, clean) = snapshot_of("<a><b>text</b><c x=\"1\"/><b>text</b></a>");
        for i in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[i] ^= 0x10;
            assert!(
                Snapshot::from_bytes(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncations_never_attach() {
        let (_, _, clean) = snapshot_of("<a><b>text</b><c x=\"1\"/></a>");
        for cut in [
            0,
            3,
            8,
            HEADER_LEN - 1,
            HEADER_LEN,
            clean.len() - 9,
            clean.len() - 1,
        ] {
            assert!(
                Snapshot::from_bytes(&clean[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn v1_store_is_not_a_snapshot() {
        let doc = parse_document("<a><b/></a>").unwrap();
        let mut v1 = Vec::new();
        crate::write_store(&doc, &mut v1).unwrap();
        assert!(matches!(
            Snapshot::from_bytes(&v1),
            Err(StoreError::UnsupportedVersion(1)) | Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn attach_modes_agree() {
        let dir = std::env::temp_dir().join(format!("wpl-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.wps");
        let doc = parse_document("<r><t>x</t><t>y</t></r>").unwrap();
        let index = TagIndex::build(&doc);
        save_snapshot(&doc, &index, &path).unwrap();

        let read = Snapshot::attach_with(&path, AttachMode::Read).unwrap();
        assert!(!read.is_mapped());
        let auto = Snapshot::attach(&path).unwrap();
        assert_eq!(auto.node_count(), read.node_count());
        assert_eq!(auto.file_len(), read.file_len());
        let t = doc.tag_id("t").unwrap();
        assert_eq!(
            auto.index_view().nodes_with_tag(t),
            read.index_view().nodes_with_tag(t)
        );
        #[cfg(unix)]
        {
            let mapped = Snapshot::attach_with(&path, AttachMode::Mmap).unwrap();
            assert!(mapped.is_mapped());
            assert_eq!(
                mapped.index_view().nodes_with_tag(t),
                read.index_view().nodes_with_tag(t)
            );
        }
    }

    #[test]
    fn peek_reads_synopses_without_attaching() {
        let dir = std::env::temp_dir().join(format!("wpl-peek-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = "<shelf><book><isbn>1</isbn></book><book><isbn>2</isbn></book><cd/></shelf>";
        let doc = parse_document(src).unwrap();
        let index = TagIndex::build(&doc);

        // v3: the stored section answers both synopses.
        let v3_path = dir.join("v3.wps");
        save_snapshot(&doc, &index, &v3_path).unwrap();
        let peek = Snapshot::peek(&v3_path).unwrap();
        assert_eq!(peek.version, SNAPSHOT_VERSION_PATHS);
        assert_eq!(peek.nodes as usize, doc.len());
        assert_eq!(peek.synopsis.tag_count("book"), 2);
        assert_eq!(peek.synopsis.elements(), (doc.len() - 1) as u64);
        let paths = peek.paths.expect("v3 stores the dataguide");
        use whirlpool_index::PathAxis::*;
        assert!(paths.matches_query_path(&[(Descendant, "book"), (Child, "isbn")]));
        assert!(!paths.matches_query_path(&[(Descendant, "cd"), (Child, "isbn")]));
        // The stored dataguide equals a fresh build.
        assert_eq!(paths, PathSynopsis::build(&doc));

        // Attach agrees with peek.
        let snap = Snapshot::attach(&v3_path).unwrap();
        assert_eq!(snap.path_synopsis(), Some(&paths));
        assert_eq!(snap.source_path(), Some(v3_path.as_path()));

        // v2 (opt-out): peek derives tag counts, reports no dataguide.
        let v2_path = dir.join("v2.wps");
        save_snapshot_with(
            &doc,
            &index,
            &v2_path,
            &SnapshotOptions {
                path_synopsis: false,
            },
        )
        .unwrap();
        let peek2 = Snapshot::peek(&v2_path).unwrap();
        assert_eq!(peek2.version, SNAPSHOT_VERSION);
        assert_eq!(peek2.synopsis.tag_count("book"), 2);
        assert!(peek2.paths.is_none());

        // A flipped byte inside the v3 synopsis section fails the
        // section's own checksum — peek never trusts garbage ceilings.
        let clean = std::fs::read(&v3_path).unwrap();
        let layout = validate(&clean).unwrap();
        let (off, len) = layout.sections[SEC_PATH_SYNOPSIS];
        let mut corrupt = clean.clone();
        corrupt[off + len / 2] ^= 0x20;
        let bad_path = dir.join("bad.wps");
        std::fs::write(&bad_path, &corrupt).unwrap();
        assert!(Snapshot::peek(&bad_path).is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_document_snapshots() {
        let doc = Document::new();
        let index = TagIndex::build(&doc);
        let bytes = build_snapshot_bytes(&doc, &index);
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.node_count(), 1);
        assert!(snap.doc_view().is_empty());
        assert_eq!(snap.synopsis().elements(), 0);
    }
}
