//! Minimal read-only memory mapping.
//!
//! The build environment vendors no external crates, so instead of
//! `libc`/`memmap2` this module declares the two syscall wrappers it
//! needs directly (`std` already links the platform libc). Non-Unix
//! targets — and Unix targets where `mmap` fails — fall back to
//! [`OwnedBytes`], an ordinary read into `u64`-backed storage, which
//! keeps the 8-byte alignment guarantee the snapshot format relies on.

use std::fs::File;
use std::io;

/// Read-only bytes backing an attached snapshot: a real memory mapping
/// or an owned in-memory copy, behind one `bytes()` accessor.
pub enum Backing {
    /// `mmap(2)`-backed, page-aligned, shared with the page cache.
    Mapped(Mapping),
    /// Heap-backed fallback (also used when the caller forces it).
    Owned(OwnedBytes),
}

impl Backing {
    /// The file's bytes. Mapped backing is page-aligned; owned backing
    /// is 8-byte aligned by construction — either satisfies the
    /// snapshot format's alignment contract.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match self {
            Backing::Mapped(m) => m.bytes(),
            Backing::Owned(o) => o.bytes(),
        }
    }

    /// True when the backing is a real memory mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self, Backing::Mapped(_))
    }
}

/// Heap storage for whole-file reads, allocated as `u64` words so the
/// base pointer is always 8-byte aligned.
pub struct OwnedBytes {
    words: Vec<u64>,
    len: usize,
}

impl OwnedBytes {
    /// Reads the entire `file` (of known `len`) into aligned storage.
    pub fn read_from(file: &mut File, len: usize) -> io::Result<OwnedBytes> {
        use std::io::Read;
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: u64 storage reinterpreted as u8 for the read; every
        // byte pattern is a valid u64.
        let buf = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8)
        };
        file.read_exact(&mut buf[..len])?;
        Ok(OwnedBytes { words, len })
    }

    /// Copies a byte slice into aligned storage (used when a snapshot
    /// arrives through a `Read` stream rather than a file).
    pub fn from_slice(bytes: &[u8]) -> OwnedBytes {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: as above.
        let buf = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8)
        };
        buf[..bytes.len()].copy_from_slice(bytes);
        OwnedBytes {
            words,
            len: bytes.len(),
        }
    }

    #[inline]
    fn bytes(&self) -> &[u8] {
        // SAFETY: reading the u64 storage as bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only, whole-file memory mapping (Unix only).
pub struct Mapping {
    #[cfg(unix)]
    ptr: *mut core::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is read-only (PROT_READ) and never mutated or
// remapped after construction; sharing the pointer across threads is
// no different from sharing a &[u8].
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `len` bytes of `file` read-only. Fails (so callers fall
    /// back to [`OwnedBytes`]) on empty files, non-Unix targets, or any
    /// `mmap` error.
    #[cfg(unix)]
    pub fn map(file: &File, len: usize) -> io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty file"));
        }
        // SAFETY: fd is valid for the duration of the call; a failed
        // map returns MAP_FAILED which is handled below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping { ptr, len })
    }

    /// Non-Unix targets never map; the caller falls back to a read.
    #[cfg(not(unix))]
    pub fn map(_file: &File, _len: usize) -> io::Result<Mapping> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap unavailable on this platform",
        ))
    }

    /// The mapped bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        #[cfg(unix)]
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by
        // self; the slice's lifetime is tied to &self.
        unsafe {
            std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len)
        }
        #[cfg(not(unix))]
        unreachable!("Mapping cannot be constructed off Unix")
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: ptr/len came from a successful mmap and are unmapped
        // exactly once.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn mapping_and_fallback_agree() {
        let dir = std::env::temp_dir().join(format!("wpl-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bytes.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(12_345).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();

        let mut f = std::fs::File::open(&path).unwrap();
        let owned = OwnedBytes::read_from(&mut f, payload.len()).unwrap();
        assert_eq!(owned.bytes(), &payload[..]);
        assert_eq!(owned.bytes().as_ptr() as usize % 8, 0);

        if let Ok(m) = Mapping::map(&f, payload.len()) {
            assert_eq!(m.bytes(), &payload[..]);
        }
        let from_slice = OwnedBytes::from_slice(&payload);
        assert_eq!(from_slice.bytes(), &payload[..]);
    }
}
