//! Host package for the repository-root `tests/` integration suites.
//! See that directory for the tests themselves.
