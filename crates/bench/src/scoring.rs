//! Scoring-function validation.
//!
//! The paper introduces the XML tf*idf scoring function but defers its
//! retrieval-quality validation: "Validating the scoring functions
//! using precision and recall is beyond the scope of this paper and the
//! subject of future work" (§6.2.2). This module supplies that
//! experiment: a corpus of answers planted at *known distortion levels*
//! from a target query, so the ideal ranking is known by construction,
//! and the measured ranking can be scored against it.
//!
//! Distortion levels for the query
//! `//book[./title = 'target' and ./isbn and ./price]`:
//!
//! | level | construction |
//! |---|---|
//! | 0 | exact: all three as children |
//! | 1 | title nested one level (one edge generalization needed) |
//! | 2 | title and price nested (two relaxations) |
//! | 3 | title nested, price missing (relaxation + leaf deletion) |
//! | 4 | only a nested title (everything else missing) |
//! | 5 | wrong title, nothing else (irrelevant) |

use whirlpool_core::{evaluate, Algorithm, EvalOptions};
use whirlpool_index::TagIndex;
use whirlpool_pattern::parse_pattern;
use whirlpool_score::{Normalization, TfIdfModel};
use whirlpool_xml::{Document, DocumentBuilder};

/// The validation query.
pub const VALIDATION_QUERY: &str = "//book[./title = 'target' and ./isbn and ./price]";

/// Number of distinct distortion levels (0 = exact … 5 = irrelevant).
pub const LEVELS: usize = 6;

/// Outcome of one validation run.
#[derive(Debug, Clone)]
pub struct ScoringValidation {
    /// Books planted per level.
    pub per_level: usize,
    /// Mean 1-based rank of each level's books in the returned order.
    pub mean_rank: [f64; LEVELS],
    /// Mean score of each level's books.
    pub mean_score: [f64; LEVELS],
    /// Precision@k for ground truth = level-0 books, at k = per_level.
    pub precision_at_k: f64,
    /// Kendall rank correlation between distortion level and rank
    /// position (1.0 = scoring orders levels perfectly).
    pub kendall_tau: f64,
}

/// Builds the planted corpus: `per_level` books at each distortion
/// level, interleaved deterministically from `seed` so document order
/// carries no signal.
pub fn build_corpus(seed: u64, per_level: usize) -> Document {
    let mut slots: Vec<usize> = (0..LEVELS)
        .flat_map(|l| std::iter::repeat(l).take(per_level))
        .collect();
    // Fisher-Yates with SplitMix64 — deterministic, dependency-free.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..slots.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        slots.swap(i, j);
    }

    let mut b = DocumentBuilder::new();
    b.open("shelf");
    for (i, &level) in slots.iter().enumerate() {
        b.open("book");
        b.attribute("level", &level.to_string());
        b.attribute("id", &format!("b{i}"));
        match level {
            0 => {
                b.leaf("title", "target");
                b.leaf("isbn", &format!("isbn{i}"));
                b.leaf("price", "10");
            }
            1 => {
                b.open("meta");
                b.leaf("title", "target");
                b.close();
                b.leaf("isbn", &format!("isbn{i}"));
                b.leaf("price", "10");
            }
            2 => {
                b.open("meta");
                b.leaf("title", "target");
                b.close();
                b.leaf("isbn", &format!("isbn{i}"));
                b.open("offer");
                b.leaf("price", "10");
                b.close();
            }
            3 => {
                b.open("meta");
                b.leaf("title", "target");
                b.close();
                b.leaf("isbn", &format!("isbn{i}"));
            }
            4 => {
                b.open("meta");
                b.leaf("title", "target");
                b.close();
            }
            _ => {
                b.leaf("title", "other");
            }
        }
        b.close();
    }
    b.close();
    b.finish()
}

/// Runs the validation experiment.
pub fn validate(seed: u64, per_level: usize) -> ScoringValidation {
    let doc = build_corpus(seed, per_level);
    let index = TagIndex::build(&doc);
    let query = parse_pattern(VALIDATION_QUERY).expect("validation query parses");
    let model = TfIdfModel::build(&doc, &index, &query, Normalization::None);
    let result = evaluate(
        &doc,
        &index,
        &query,
        &model,
        &Algorithm::WhirlpoolS,
        &EvalOptions::top_k(per_level * LEVELS),
    );

    // Map answers back to planted levels.
    let levels: Vec<usize> = result
        .answers
        .iter()
        .map(|a| {
            doc.attribute(a.root, "level")
                .expect("planted books carry a level")
                .parse::<usize>()
                .expect("numeric level")
        })
        .collect();

    let mut rank_sum = [0.0f64; LEVELS];
    let mut score_sum = [0.0f64; LEVELS];
    let mut count = [0usize; LEVELS];
    for (rank, (&level, answer)) in levels.iter().zip(&result.answers).enumerate() {
        rank_sum[level] += (rank + 1) as f64;
        score_sum[level] += answer.score.value();
        count[level] += 1;
    }
    let mut mean_rank = [0.0f64; LEVELS];
    let mut mean_score = [0.0f64; LEVELS];
    for l in 0..LEVELS {
        let n = count[l].max(1) as f64;
        mean_rank[l] = rank_sum[l] / n;
        mean_score[l] = score_sum[l] / n;
    }

    let precision_at_k =
        levels.iter().take(per_level).filter(|&&l| l == 0).count() as f64 / per_level as f64;

    ScoringValidation {
        per_level,
        mean_rank,
        mean_score,
        precision_at_k,
        kendall_tau: kendall_tau(&levels),
    }
}

/// Kendall tau between the planted level sequence (in rank order) and
/// the ideal non-decreasing order: concordant pairs have the
/// lower-distortion book ranked first. Ties (equal levels) are skipped.
fn kendall_tau(levels_in_rank_order: &[usize]) -> f64 {
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..levels_in_rank_order.len() {
        for j in (i + 1)..levels_in_rank_order.len() {
            match levels_in_rank_order[i].cmp(&levels_in_rank_order[j]) {
                std::cmp::Ordering::Less => concordant += 1,
                std::cmp::Ordering::Greater => discordant += 1,
                std::cmp::Ordering::Equal => {}
            }
        }
    }
    let total = concordant + discordant;
    if total == 0 {
        0.0
    } else {
        (concordant - discordant) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_planted_levels() {
        let doc = build_corpus(1, 10);
        let book = doc.tag_id("book").unwrap();
        let mut count = [0usize; LEVELS];
        for n in doc.elements().filter(|&n| doc.tag(n) == book) {
            let level: usize = doc.attribute(n, "level").unwrap().parse().unwrap();
            count[level] += 1;
        }
        assert_eq!(count, [10; LEVELS]);
    }

    #[test]
    fn ranking_orders_distortion_levels() {
        let v = validate(7, 20);
        // Mean rank must be strictly increasing with distortion level:
        // less-distorted answers rank higher.
        for l in 1..LEVELS {
            assert!(
                v.mean_rank[l] > v.mean_rank[l - 1],
                "level {l} mean rank {} not worse than level {} ({})",
                v.mean_rank[l],
                l - 1,
                v.mean_rank[l - 1]
            );
        }
        assert!(v.precision_at_k >= 0.99, "precision@k {}", v.precision_at_k);
        assert!(v.kendall_tau > 0.95, "tau {}", v.kendall_tau);
    }

    #[test]
    fn scores_decrease_with_distortion() {
        let v = validate(3, 15);
        for l in 1..LEVELS {
            assert!(
                v.mean_score[l] <= v.mean_score[l - 1] + 1e-9,
                "level {l} scores above level {}",
                l - 1
            );
        }
        assert!(v.mean_score[LEVELS - 1] < 1e-9, "irrelevant books score ~0");
    }

    #[test]
    fn kendall_tau_extremes() {
        assert_eq!(kendall_tau(&[0, 1, 2, 3]), 1.0);
        assert_eq!(kendall_tau(&[3, 2, 1, 0]), -1.0);
        assert_eq!(kendall_tau(&[1, 1, 1]), 0.0);
    }
}
