//! Threshold-growth traces.
//!
//! The paper explains several effects (§6.3.5) through how fast the
//! k-th best score — the pruning threshold — grows during evaluation:
//! "top-k values grow faster in Whirlpool-M than in Whirlpool-S, which
//! may lead to different routing choices". These instrumented engine
//! loops (built entirely on the library's public API) sample the
//! threshold after every server operation, so the growth curves of
//! LockStep and Whirlpool-S can be compared directly.

use whirlpool_core::{MatchQueue, QueryContext, QueuePolicy, RelaxMode, RoutingStrategy, TopKSet};
use whirlpool_pattern::StaticPlan;

/// One sample: threshold value after `ops` server operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthPoint {
    pub ops: u64,
    pub threshold: f64,
}

/// Samples the pruning threshold over a LockStep (with pruning) run.
pub fn lockstep_growth(ctx: &QueryContext<'_>, plan: &StaticPlan, k: usize) -> Vec<GrowthPoint> {
    let offer_partial = ctx.relax == RelaxMode::Relaxed;
    let full = ctx.full_mask();
    let mut topk = TopKSet::new(k);
    let mut trace = Vec::new();
    let mut ops = 0u64;

    let mut frontier = ctx.make_root_matches();
    if offer_partial {
        for m in &frontier {
            topk.offer_match(m);
        }
    }
    for &server in plan.order() {
        // Best-first within the stage, as the engine does.
        frontier.sort_by(|a, b| b.max_final.cmp(&a.max_final).then(a.seq.cmp(&b.seq)));
        let mut next = Vec::new();
        let mut exts = Vec::new();
        for m in frontier.drain(..) {
            if topk.should_prune(&m) {
                continue;
            }
            exts.clear();
            ctx.process_at_server(server, &m, &mut exts);
            ops += 1;
            for e in exts.drain(..) {
                if offer_partial || e.is_complete(full) {
                    topk.offer_match(&e);
                }
                if !topk.should_prune(&e) {
                    next.push(e);
                }
            }
            trace.push(GrowthPoint {
                ops,
                threshold: topk.threshold().value(),
            });
        }
        frontier = next;
    }
    trace
}

/// Samples the pruning threshold over a Whirlpool-S run.
pub fn whirlpool_s_growth(
    ctx: &QueryContext<'_>,
    routing: &RoutingStrategy,
    k: usize,
) -> Vec<GrowthPoint> {
    let offer_partial = ctx.relax == RelaxMode::Relaxed;
    let full = ctx.full_mask();
    let mut topk = TopKSet::new(k);
    let mut queue = MatchQueue::new(QueuePolicy::MaxFinalScore, None);
    let mut trace = Vec::new();
    let mut ops = 0u64;

    for m in ctx.make_root_matches() {
        let complete = m.is_complete(full);
        if offer_partial || complete {
            topk.offer_match(&m);
        }
        if !complete {
            queue.push(ctx, m);
        }
    }

    let mut exts = Vec::new();
    while let Some(m) = queue.pop() {
        if topk.should_prune(&m) {
            continue;
        }
        let server = routing.choose(ctx, &m, topk.threshold());
        exts.clear();
        ctx.process_at_server(server, &m, &mut exts);
        ops += 1;
        for e in exts.drain(..) {
            let complete = e.is_complete(full);
            if offer_partial || complete {
                topk.offer_match(&e);
            }
            if !complete && !topk.should_prune(&e) {
                queue.push(ctx, e);
            }
        }
        trace.push(GrowthPoint {
            ops,
            threshold: topk.threshold().value(),
        });
    }
    trace
}

/// The threshold value after at most `ops` operations.
pub fn threshold_at_ops(trace: &[GrowthPoint], ops: u64) -> f64 {
    trace
        .iter()
        .take_while(|p| p.ops <= ops)
        .last()
        .map_or(0.0, |p| p.threshold)
}

/// Interpolates a trace at a fraction of its total operation count.
pub fn threshold_at_fraction(trace: &[GrowthPoint], fraction: f64) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    let total = trace.last().unwrap().ops as f64;
    let target = (total * fraction).round() as u64;
    trace
        .iter()
        .take_while(|p| p.ops <= target.max(1))
        .last()
        .map_or(0.0, |p| p.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_core::ContextOptions;
    use whirlpool_index::TagIndex;
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xmark::{generate, queries, GeneratorConfig};

    fn harness(f: impl FnOnce(&QueryContext<'_>)) {
        let doc = generate(&GeneratorConfig::items(120));
        let index = TagIndex::build(&doc);
        let query = queries::parse(queries::Q2);
        let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
        let ctx = QueryContext::new(&doc, &index, &query, &model, ContextOptions::default());
        f(&ctx);
    }

    #[test]
    fn thresholds_are_monotone() {
        harness(|ctx| {
            let plan = StaticPlan::in_id_order(5);
            for trace in [
                lockstep_growth(ctx, &plan, 15),
                whirlpool_s_growth(ctx, &RoutingStrategy::MinAlive, 15),
            ] {
                assert!(!trace.is_empty());
                for w in trace.windows(2) {
                    assert!(w[1].threshold >= w[0].threshold);
                    assert!(w[1].ops >= w[0].ops);
                }
            }
        });
    }

    #[test]
    fn adaptive_threshold_grows_no_slower_early_on() {
        // The premise behind per-match adaptivity: at the same point in
        // the evaluation (fraction of its own ops), the adaptive engine
        // has at least matched the lock-step threshold.
        let mut lockstep_q = 0.0;
        let mut adaptive_q = 0.0;
        harness(|ctx| {
            let t = lockstep_growth(ctx, &StaticPlan::in_id_order(5), 15);
            lockstep_q = threshold_at_fraction(&t, 0.1);
        });
        harness(|ctx| {
            let t = whirlpool_s_growth(ctx, &RoutingStrategy::MinAlive, 15);
            adaptive_q = threshold_at_fraction(&t, 0.1);
        });
        assert!(
            adaptive_q >= lockstep_q * 0.99,
            "adaptive {adaptive_q} vs lockstep {lockstep_q} at 10% of ops"
        );
    }

    #[test]
    fn fraction_interpolation() {
        let trace = vec![
            GrowthPoint {
                ops: 1,
                threshold: 0.0,
            },
            GrowthPoint {
                ops: 5,
                threshold: 1.0,
            },
            GrowthPoint {
                ops: 10,
                threshold: 2.0,
            },
        ];
        assert_eq!(threshold_at_fraction(&trace, 0.0), 0.0);
        assert_eq!(threshold_at_fraction(&trace, 0.5), 1.0);
        assert_eq!(threshold_at_fraction(&trace, 1.0), 2.0);
        assert_eq!(threshold_at_fraction(&[], 0.5), 0.0);
    }
}
