//! Shared experiment harness for the paper-figure reproduction
//! (`src/bin/repro.rs`), the performance snapshot (`src/bin/perfsnap.rs`),
//! and the Criterion benches.
//!
//! Three layers:
//!
//! * [`Workload`] / [`WorkloadCache`] — XMark-like documents with their
//!   indexes, generated once per size and shared across experiments.
//! * [`trace`] — instrumented engine loops that sample the pruning
//!   threshold per operation (predates the structured event layer;
//!   kept for its direct, re-implementable growth curves).
//! * [`aggregate`] — post-processing over [`whirlpool_core::trace`]
//!   event streams: per-server latency histograms, score-progress
//!   curves, and phase timings, as emitted into `BENCH_trace.json`.

pub mod aggregate;
pub mod scoring;
pub mod trace;

use std::collections::HashMap;
use std::time::Duration;
use whirlpool_core::{
    evaluate, Algorithm, ContextOptions, EvalOptions, EvalResult, QueryContext, QueuePolicy,
    RelaxMode, RoutingStrategy,
};
use whirlpool_index::TagIndex;
use whirlpool_pattern::{QNodeId, StaticPlan, TreePattern};
use whirlpool_score::{FixedScores, Normalization, ScoreModel, TfIdfModel};
use whirlpool_xmark::{books, generate, GeneratorConfig};
use whirlpool_xml::{Document, DocumentStats};

/// A generated document with its index, cached by requested size.
pub struct Workload {
    pub doc: Document,
    pub index: TagIndex,
    pub label: String,
}

impl Workload {
    pub fn of_megabytes(mb: usize) -> Workload {
        let doc = generate(&GeneratorConfig::megabytes(mb));
        let index = TagIndex::build(&doc);
        Workload {
            doc,
            index,
            label: format!("{mb}M"),
        }
    }

    pub fn of_bytes(bytes: usize, label: impl Into<String>) -> Workload {
        let doc = generate(&GeneratorConfig {
            target_bytes: bytes,
            seed: 42,
            max_items: None,
        });
        let index = TagIndex::build(&doc);
        Workload {
            doc,
            index,
            label: label.into(),
        }
    }

    pub fn of_items(items: usize) -> Workload {
        let doc = generate(&GeneratorConfig::items(items));
        let index = TagIndex::build(&doc);
        Workload {
            doc,
            index,
            label: format!("{items}items"),
        }
    }

    pub fn stats(&self) -> DocumentStats {
        DocumentStats::compute(&self.doc)
    }

    /// Builds the default (sparse-normalized tf*idf) score model for a
    /// query over this workload.
    pub fn model(&self, query: &TreePattern) -> TfIdfModel {
        TfIdfModel::build(&self.doc, &self.index, query, Normalization::Sparse)
    }

    /// Runs one evaluation.
    pub fn run(
        &self,
        query: &TreePattern,
        model: &dyn ScoreModel,
        algorithm: &Algorithm,
        options: &EvalOptions,
    ) -> EvalResult {
        evaluate(&self.doc, &self.index, query, model, algorithm, options)
    }
}

/// A size-keyed workload cache so multi-experiment runs generate each
/// document once.
#[derive(Default)]
pub struct WorkloadCache {
    by_label: HashMap<String, Workload>,
}

impl WorkloadCache {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn megabytes(&mut self, mb: usize) -> &Workload {
        self.by_label
            .entry(format!("{mb}M"))
            .or_insert_with(|| Workload::of_megabytes(mb))
    }

    pub fn bytes(&mut self, bytes: usize, label: &str) -> &Workload {
        self.by_label
            .entry(label.to_string())
            .or_insert_with(|| Workload::of_bytes(bytes, label))
    }
}

/// Median of a slice (panics on empty input).
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Options preset for a default-parameter run (Table 1 bold: k = 15,
/// sparse scoring, min_alive routing, max-final queues).
pub fn default_options(k: usize) -> EvalOptions {
    EvalOptions {
        k,
        relax: RelaxMode::Relaxed,
        routing: RoutingStrategy::MinAlive,
        queue: QueuePolicy::MaxFinalScore,
        op_cost: None,
        selectivity_sample: 64,
        router_batch: 1,
        pooling: true,
        op_batching: true,
        deadline: None,
        max_server_ops: None,
        fault_plan: None,
        cancel: None,
        trace: false,
        threads: 1,
        threshold_floor: 0.0,
        assist: None,
    }
}

/// Options for a static-plan run.
pub fn static_options(k: usize, plan: StaticPlan) -> EvalOptions {
    EvalOptions {
        routing: RoutingStrategy::Static(plan),
        ..default_options(k)
    }
}

// ---------------------------------------------------------------------
// Figure 3: the §2 motivating example.
// ---------------------------------------------------------------------

/// One run of the Figure 3 example: evaluate the top-1 query
/// `/book[./title and ./location and ./price]` over book (d) under a
/// *fixed* `current_top_k` threshold with a given join order, counting
/// operations. A tuple is discarded when even its maximum possible
/// final score cannot beat the threshold.
pub struct Fig3Outcome {
    /// Partial matches processed by servers (tuples joined).
    pub server_ops: u64,
    /// Individual join-predicate comparisons.
    pub comparisons: u64,
}

/// The Figure 3 plans, in the paper's numbering (title = q1,
/// location = q2, price = q3): the text pins Plan 3 =
/// location ▷ title ▷ price, Plan 4 = location ▷ price ▷ title,
/// Plan 5 = price ▷ location ▷ title, Plan 6 = price ▷ title ▷
/// location; Plans 1/2 are the remaining title-first orders.
pub fn fig3_plans() -> Vec<(String, StaticPlan)> {
    let orders: [[u8; 3]; 6] = [
        [1, 2, 3],
        [1, 3, 2],
        [2, 1, 3],
        [2, 3, 1],
        [3, 2, 1],
        [3, 1, 2],
    ];
    orders
        .iter()
        .enumerate()
        .map(|(i, order)| {
            let plan = StaticPlan::new(order.iter().map(|&q| QNodeId(q)).collect());
            (format!("Plan {}", i + 1), plan)
        })
        .collect()
}

/// Runs the Figure 3 example for one plan and threshold.
pub fn fig3_run(plan: &StaticPlan, current_top_k: f64) -> Fig3Outcome {
    let (doc, nodes) = books::figure3_document();
    let index = TagIndex::build(&doc);
    let query = whirlpool_xmark::queries::parse(whirlpool_xmark::queries::FIG3);

    // Per-node fixed scores, exactly the paper's numbers.
    let mut entries = Vec::new();
    for (n, s) in nodes.titles.iter().zip(books::FIG3_TITLE_SCORES) {
        entries.push((QNodeId(1), *n, s));
    }
    for (n, s) in nodes.locations.iter().zip(books::FIG3_LOCATION_SCORES) {
        entries.push((QNodeId(2), *n, s));
    }
    for (n, s) in nodes.prices.iter().zip(books::FIG3_PRICE_SCORES) {
        entries.push((QNodeId(3), *n, s));
    }
    let model = FixedScores::new(query.len(), &entries);

    let ctx = QueryContext::new(&doc, &index, &query, &model, ContextOptions::default());

    // Lock-step through the plan with a *fixed* threshold: prune a tuple
    // when its maximum possible final score cannot beat currentTopK.
    let mut frontier = ctx.make_root_matches();
    let mut exts = Vec::new();
    for &server in plan.order() {
        let mut next = Vec::new();
        for m in frontier.drain(..) {
            exts.clear();
            ctx.process_at_server(server, &m, &mut exts);
            for e in exts.drain(..) {
                if e.max_final.value() > current_top_k {
                    next.push(e);
                }
            }
        }
        frontier = next;
    }
    let snapshot = ctx.metrics.snapshot();
    Fig3Outcome {
        server_ops: snapshot.server_ops,
        comparisons: snapshot.predicate_comparisons,
    }
}

/// Convenience: a `Duration` from fractional milliseconds.
pub fn millis(ms: f64) -> Duration {
    Duration::from_secs_f64(ms / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_six_plans() {
        let plans = fig3_plans();
        assert_eq!(plans.len(), 6);
        // Paper's Plan 6 = price, title, location.
        assert_eq!(plans[5].1.order(), &[QNodeId(3), QNodeId(1), QNodeId(2)]);
        // Paper's Plan 4 = location, price, title.
        assert_eq!(plans[3].1.order(), &[QNodeId(2), QNodeId(3), QNodeId(1)]);
    }

    #[test]
    fn fig3_no_plan_dominates() {
        // The paper's point: the best plan changes with currentTopK.
        let plans = fig3_plans();
        let best_at = |tau: f64| -> usize {
            plans
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, p))| fig3_run(p, tau).server_ops)
                .map(|(i, _)| i)
                .unwrap()
        };
        let low = best_at(0.0);
        let high = best_at(0.75);
        assert_ne!(low, high, "the same plan wins at both ends");
    }

    #[test]
    fn fig3_pruning_monotone_in_threshold() {
        let plans = fig3_plans();
        for (_, plan) in &plans {
            let mut prev = u64::MAX;
            for tau in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
                let ops = fig3_run(plan, tau).server_ops;
                assert!(ops <= prev, "ops increased with threshold");
                prev = ops;
            }
        }
    }

    #[test]
    fn median_works() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn workload_cache_reuses_documents() {
        let mut cache = WorkloadCache::new();
        let a = cache.bytes(50_000, "tiny") as *const Workload;
        let b = cache.bytes(50_000, "tiny") as *const Workload;
        assert_eq!(a, b);
    }
}
