//! Performance snapshot: runs the Table-1 default configuration (Q2,
//! 10 Mb document, k = 15) across all four engines with binding-buffer
//! pooling on and off, and writes the medians plus allocation counters
//! to `BENCH_core.json`. A third traced run per engine pins the cost of
//! the observability layer (`BENCH_core.json`'s `trace_overhead`
//! fields; the untraced rows are the ≤ 2 % regression anchor) and its
//! aggregated event stream — score-progress curve, per-server latency
//! histograms, phase times — goes to `BENCH_trace.json`.
//!
//! ```text
//! cargo run --release -p whirlpool-bench --bin perfsnap
//! cargo run --release -p whirlpool-bench --bin perfsnap -- --smoke
//! cargo run --release -p whirlpool-bench --bin perfsnap -- --reps 7 --out BENCH_core.json
//! ```
//!
//! `--smoke` shrinks the document and repetition count for CI and
//! prints the JSON to stdout instead of writing files; it still fails
//! (exit 1) if any pooled run disagrees with its unpooled twin, and it
//! additionally gates the pooled path's performance: Whirlpool-M's and
//! LockStep's pooled medians must not exceed their unpooled medians by
//! more than 5 % (the pool regression guard), and the *virtual*
//! 4-thread Whirlpool-M makespan must not exceed the 1-thread one (the
//! scheduler scaling guard — virtual time, so it holds even on a
//! single-core CI box).
//!
//! A `scaling` section sweeps Whirlpool-M's scheduler pool size (1, 2,
//! 4, 8 workers) at the pooled defaults; every config's answers are
//! checked tie-aware ([`answers_equivalent`] — concurrent
//! interleavings may resolve a tied boundary group differently, and
//! any resolution is a correct top-k). Each config records the real
//! wall-clock median **and** the discrete-event virtual makespan
//! ([`whirlpool_core::vtime`], `processors = threads`): on the
//! single-core machines this repo targets, real walls cannot speed up
//! with added workers, so the virtual makespan is the honest vehicle
//! for the paper's Figure-9 speedup curve while the real wall pins the
//! scheduler's overhead. Derived `speedup` (virtual, relative to 1
//! worker) and `steal_rate` (real, stolen batches per server-op batch)
//! arrays feed `--compare`, which fails when a speedup regresses by
//! more than 15 %.
//!
//! A `kernel` section microbenchmarks one server operation in
//! isolation — the retired Dewey-materializing kernel
//! ([`QueryContext::process_at_server_dewey_reference`]) against the
//! live columnar one — as per-op latency medians and log2-ns
//! histograms.
//!
//! A `collection_lazy` section exercises the disk-resident driver:
//! `Collection::open_dir` over a directory of snapshot shards whose
//! sparse majority carries the query's tags in the wrong arrangement,
//! so only the stored path synopsis can prune them before their
//! payload is read. Gated: ≥ 50 % of shards pruned before attach,
//! tie-aware answer equivalence against the eager scan (capped and
//! uncapped), lazy wall ≤ eager wall, and evictions under
//! `max_resident = 2`.
//!
//! `--compare <old BENCH_core.json>` diffs this run's pooled
//! wall-clock medians against a previous snapshot and exits non-zero
//! when any engine regressed by more than 15 % (skipped with a warning
//! when the old snapshot was taken on a different document label).

use std::io::Write as _;
use std::time::Instant;
use whirlpool_bench::aggregate::TraceAggregate;
use whirlpool_bench::{default_options, median, Workload};
use whirlpool_core::vtime::{sequential_virtual_time, simulate_whirlpool_m, VTimeConfig};
use whirlpool_core::{
    answers_equivalent, collection_answers_equivalent, evaluate_collection, Algorithm, Collection,
    CollectionOptions, ContextOptions, EvalOptions, EvalResult, MetricsSnapshot, QueryContext,
    QueuePolicy, RoutingStrategy,
};
use whirlpool_score::Normalization;
use whirlpool_xmark::{generate, queries, GeneratorConfig};

struct ConfigStats {
    wall_ms_median: f64,
    metrics: MetricsSnapshot,
}

struct EngineRow {
    name: &'static str,
    pooled: ConfigStats,
    unpooled: ConfigStats,
    answers_identical: bool,
    /// Median wall time with event tracing on, and whether the traced
    /// run returned the same answers (tracing must not perturb results).
    traced_wall_ms: f64,
    traced_identical: bool,
    aggregate: TraceAggregate,
    trace_events: usize,
}

fn run_config(
    workload: &Workload,
    query: &whirlpool_pattern::TreePattern,
    model: &dyn whirlpool_score::ScoreModel,
    algorithm: &Algorithm,
    options: &EvalOptions,
    reps: usize,
) -> (ConfigStats, EvalResult) {
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let result = workload.run(query, model, algorithm, options);
        walls.push(result.elapsed.as_secs_f64() * 1e3);
        last = Some(result);
    }
    let last = last.expect("reps >= 1");
    (
        ConfigStats {
            wall_ms_median: median(&mut walls),
            metrics: last.metrics,
        },
        last,
    )
}

/// Per-op latency of one server-op kernel: the median and a log2(ns)
/// histogram (bucket `i` counts ops with `2^i <= ns < 2^(i+1)`).
struct KernelSide {
    median_ns: f64,
    hist: [u64; 24],
}

impl KernelSide {
    fn from_samples(mut ns: Vec<f64>) -> KernelSide {
        let mut hist = [0u64; 24];
        for &v in &ns {
            let bucket = (v.max(1.0).log2() as usize).min(23);
            hist[bucket] += 1;
        }
        KernelSide {
            median_ns: median(&mut ns),
            hist,
        }
    }

    fn push_json(&self, out: &mut String, label: &str, comma: bool) {
        let buckets: Vec<String> = self.hist.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "    \"{label}\": {{\"median_ns\": {:.1}, \"hist_log2_ns\": [{}]}}{}\n",
            self.median_ns,
            buckets.join(", "),
            if comma { "," } else { "" },
        ));
    }
}

/// Microbenchmarks one server operation per (sampled root match,
/// server) pair under both kernels. The Dewey reference and the
/// columnar kernel see identical inputs (fresh root matches, same
/// candidate ranges), so the per-op deltas isolate the predicate-check
/// rewrite itself.
fn kernel_microbench(
    workload: &Workload,
    query: &whirlpool_pattern::TreePattern,
    model: &dyn whirlpool_score::ScoreModel,
    cap: usize,
) -> (KernelSide, KernelSide, usize) {
    let ctx = QueryContext::new(
        &workload.doc,
        &workload.index,
        query,
        model,
        ContextOptions::default(),
    );
    let mut pool = ctx.new_pool();
    let matches = ctx.make_root_matches();
    let step = (matches.len() / cap.max(1)).max(1);
    let sample: Vec<_> = matches.iter().step_by(step).take(cap).collect();
    let servers: Vec<whirlpool_pattern::QNodeId> = query.server_ids().collect();

    let mut out = Vec::new();
    let mut dewey_ns = Vec::with_capacity(sample.len() * servers.len());
    let mut columnar_ns = Vec::with_capacity(sample.len() * servers.len());
    for &m in &sample {
        for &server in &servers {
            out.clear();
            let t = Instant::now();
            ctx.process_at_server_dewey_reference(server, m, &mut out, &mut pool);
            dewey_ns.push(t.elapsed().as_nanos() as f64);
            for e in out.drain(..) {
                pool.release(e);
            }
            let t = Instant::now();
            ctx.process_at_server_pooled(server, m, &mut out, &mut pool);
            columnar_ns.push(t.elapsed().as_nanos() as f64);
            for e in out.drain(..) {
                pool.release(e);
            }
        }
    }
    let ops = dewey_ns.len();
    (
        KernelSide::from_samples(dewey_ns),
        KernelSide::from_samples(columnar_ns),
        ops,
    )
}

/// Daemon serving benchmark: steady-state latency percentiles plus the
/// shed rate under 2x admission overload.
struct ServeBenchStats {
    workers: usize,
    max_inflight: usize,
    steady_requests: usize,
    steady_p50_ms: f64,
    steady_p99_ms: f64,
    overload_clients: usize,
    overload_total: usize,
    overload_served: usize,
    overload_shed: usize,
    overload_p50_ms: f64,
    overload_p99_ms: f64,
    conserved: bool,
}

impl ServeBenchStats {
    fn shed_rate(&self) -> f64 {
        if self.overload_total == 0 {
            0.0
        } else {
            self.overload_shed as f64 / self.overload_total as f64
        }
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// One raw-HTTP query round trip; returns (status, wall ms).
fn serve_request(addr: std::net::SocketAddr, body: &str) -> (u16, f64) {
    use std::io::{Read as _, Write as _};
    let raw = format!(
        "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let t = Instant::now();
    let mut conn = std::net::TcpStream::connect(addr).expect("connect to bench daemon");
    conn.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    conn.write_all(raw.as_bytes()).expect("send bench query");
    let mut response = String::new();
    conn.read_to_string(&mut response)
        .expect("read bench reply");
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    (status, t.elapsed().as_secs_f64() * 1e3)
}

/// Runs the daemon benchmark: `steady` sequential requests for the
/// no-contention percentiles, then `2 * max_inflight` concurrent
/// clients (each sending `per_client` requests with a small artificial
/// per-op cost so evaluations genuinely overlap) for the overload shed
/// rate. The conservation law is checked at quiescence.
fn serve_bench(items: usize, steady: usize, per_client: usize) -> ServeBenchStats {
    use whirlpool_serve::{start, DocState, Registry, ServeConfig};
    let mut registry = Registry::new();
    registry.insert(DocState::new(
        "bench",
        whirlpool_xmark::generate(&whirlpool_xmark::GeneratorConfig::items(items)),
    ));
    let config = ServeConfig::default();
    let workers = config.workers;
    let max_inflight = config.max_inflight;
    // What the daemon can hold without shedding: evaluations in the
    // workers plus connections parked in the accept queue. "2x
    // overload" doubles that.
    let holding_capacity = config.workers + config.queue_depth;
    let handle = start(config, registry).expect("bench daemon");
    let addr = handle.addr();
    let steady_body = format!("{{\"query\": \"{}\", \"k\": 15}}", queries::Q2);

    let mut steady_ms = Vec::with_capacity(steady);
    for _ in 0..steady {
        let (status, ms) = serve_request(addr, &steady_body);
        assert_eq!(status, 200, "steady-state bench query must succeed");
        steady_ms.push(ms);
    }
    steady_ms.sort_by(|a, b| a.total_cmp(b));

    let overload_clients = holding_capacity * 2;
    let overload_body = format!(
        "{{\"query\": \"{}\", \"k\": 15, \"op_cost_us\": 200}}",
        queries::Q2
    );
    let joined: Vec<(Vec<u16>, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..overload_clients)
            .map(|_| {
                let body = overload_body.clone();
                scope.spawn(move || {
                    let mut statuses = Vec::with_capacity(per_client);
                    let mut served_ms = Vec::new();
                    for _ in 0..per_client {
                        let (status, ms) = serve_request(addr, &body);
                        if status == 200 {
                            served_ms.push(ms);
                        }
                        statuses.push(status);
                    }
                    (statuses, served_ms)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("overload client"))
            .collect()
    });
    let statuses: Vec<u16> = joined.iter().flat_map(|(s, _)| s.iter().copied()).collect();
    let mut overload_ms: Vec<f64> = joined
        .iter()
        .flat_map(|(_, ms)| ms.iter().copied())
        .collect();
    overload_ms.sort_by(|a, b| a.total_cmp(b));

    // Quiesce, then check the conservation law on the daemon's own
    // counters: every admitted request settled exactly once.
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    while handle.inflight() > 0 && Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let snapshot = handle.metrics().snapshot();
    let conserved = snapshot.conserved();
    handle.shutdown();

    ServeBenchStats {
        workers,
        max_inflight,
        steady_requests: steady,
        steady_p50_ms: percentile(&steady_ms, 0.50),
        steady_p99_ms: percentile(&steady_ms, 0.99),
        overload_clients,
        overload_total: statuses.len(),
        overload_served: statuses.iter().filter(|&&s| s == 200).count(),
        overload_shed: statuses.iter().filter(|&&s| s == 429).count(),
        overload_p50_ms: percentile(&overload_ms, 0.50),
        overload_p99_ms: percentile(&overload_ms, 0.99),
        conserved,
    }
}

/// Extracts `(engine name, pooled wall-ms median)` pairs from a
/// previously written snapshot. Hand-rolled to match `config_json`'s
/// output shape — the repo carries no JSON parser dependency.
struct CollectionBenchStats {
    shards_total: usize,
    rich_shards: usize,
    k: usize,
    scan_all_wall_ms: f64,
    sharded_wall_ms: f64,
    shards_visited: usize,
    shards_pruned: usize,
    equivalent: bool,
}

impl CollectionBenchStats {
    fn speedup(&self) -> f64 {
        if self.sharded_wall_ms > 0.0 {
            self.scan_all_wall_ms / self.sharded_wall_ms
        } else {
            1.0
        }
    }
}

/// Benchmarks the sharded collection driver against its own scan-all
/// baseline on a skewed corpus: a few rich XMark shards holding every
/// full Q2 match, plus many sparse shards whose items carry none of
/// Q2's predicate paths (`description/parlist`, `mailbox/mail/text`).
/// The sparse shards cost the scan real work — every item is a
/// candidate answer root — but their synopsis ceilings collapse to the
/// bare root contribution, which falls below the global threshold once
/// the rich shards fill the top-k, so the sharded run skips them
/// without touching their postings.
fn collection_bench(
    rich: usize,
    sparse: usize,
    bytes_per_rich: usize,
    k: usize,
    reps: usize,
) -> CollectionBenchStats {
    let mut collection = Collection::new();
    for i in 0..rich {
        let doc = generate(&GeneratorConfig {
            target_bytes: bytes_per_rich,
            seed: 1000 + i as u64,
            max_items: None,
        });
        collection.add_document(format!("rich-{i:02}"), doc);
    }
    // Sparse shards carry as many items as the largest rich shard, so
    // the scan-all baseline pays a comparable per-shard candidate cost.
    let rich_items = collection
        .shards()
        .iter()
        .map(|s| s.synopsis().tag_count("item"))
        .max()
        .unwrap_or(0);
    for i in 0..sparse {
        let mut src = String::from("<site><regions><namerica>");
        for j in 0..rich_items {
            src.push_str(&format!(
                "<item id=\"sparse-{i}-{j}\"><name>widget {j}</name>\
                 <quantity>1</quantity></item>"
            ));
        }
        src.push_str("</namerica></regions></site>");
        collection
            .add_source(format!("sparse-{i:02}"), &src)
            .expect("synthetic sparse shard parses");
    }

    let query = queries::parse(queries::Q2);
    let options = default_options(k);
    let run = |copts: &CollectionOptions| {
        let mut walls = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let r = evaluate_collection(
                &collection,
                &query,
                &Algorithm::WhirlpoolS,
                &options,
                Normalization::Sparse,
                copts,
            );
            walls.push(r.elapsed.as_secs_f64() * 1e3);
            last = Some(r);
        }
        (median(&mut walls), last.expect("reps >= 1"))
    };
    let (scan_ms, scan_last) = run(&CollectionOptions::scan_all());
    let (sharded_ms, sharded_last) = run(&CollectionOptions::default());
    CollectionBenchStats {
        shards_total: collection.len(),
        rich_shards: rich,
        k,
        scan_all_wall_ms: scan_ms,
        sharded_wall_ms: sharded_ms,
        shards_visited: sharded_last.collection_metrics.shards_visited,
        shards_pruned: sharded_last.collection_metrics.shards_pruned,
        equivalent: collection_answers_equivalent(&scan_last.answers, &sharded_last.answers, 1e-9),
    }
}

/// Disk-resident lazy collection: `open_dir` over a directory of
/// snapshot shards, attach-on-visit against an eager scan-all.
struct CollectionLazyStats {
    shards_total: usize,
    rich_shards: usize,
    k: usize,
    /// Median of `Collection::open_dir` — one peek per shard, nothing
    /// attached.
    open_ms: f64,
    /// Median wall of scan-all on a freshly opened collection: every
    /// shard's payload is attached and evaluated.
    eager_wall_ms: f64,
    /// Median wall of the ceiling-ordered lazy run on a freshly opened
    /// collection: only visited shards touch disk.
    lazy_wall_ms: f64,
    shards_visited: usize,
    shards_attached: u64,
    /// Shards discarded by their path-synopsis ceiling with the payload
    /// never read from disk.
    pruned_before_attach: usize,
    /// Evictions observed rerunning the lazy config under
    /// `max_resident = 2`.
    capped_evictions: u64,
    equivalent: bool,
    capped_equivalent: bool,
}

impl CollectionLazyStats {
    fn speedup(&self) -> f64 {
        if self.lazy_wall_ms > 0.0 {
            self.eager_wall_ms / self.lazy_wall_ms
        } else {
            1.0
        }
    }

    fn pruned_rate(&self) -> f64 {
        if self.shards_total > 0 {
            self.pruned_before_attach as f64 / self.shards_total as f64
        } else {
            0.0
        }
    }
}

/// Benchmarks the attach-on-visit driver on a corpus built to defeat
/// tag-count ceilings: a few rich shards whose books carry `title`,
/// `isbn`, and `price` as direct children, and many sparse shards with
/// *the same tags* arranged uselessly (isbn and price live under an
/// `<archive>`, never under a `<book>`). Tag counts cannot tell the
/// two apart, so only the stored path synopsis lets the driver drop a
/// sparse shard before reading its payload. Every rep reopens the
/// directory so all three configs start cold; the eager baseline is
/// scan-all on the same lazy collection, which attaches every shard.
fn collection_lazy_bench(rich: usize, sparse: usize, k: usize, reps: usize) -> CollectionLazyStats {
    let dir = std::env::temp_dir().join(format!("wp-perfsnap-lazy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create lazy fixture dir");
    let write = |name: String, src: &str| {
        let doc = whirlpool_xml::parse_document(src).expect("lazy fixture parses");
        let index = whirlpool_index::TagIndex::build(&doc);
        whirlpool_store::save_snapshot(&doc, &index, dir.join(name)).expect("write fixture shard");
    };
    for i in 0..rich {
        let mut src = String::from("<shelf>");
        for j in 0..3 {
            src.push_str(&format!(
                "<book><title>rich {i} vol {j}</title>\
                 <isbn>{i}-{j}</isbn><price>{j}</price></book>"
            ));
        }
        src.push_str("</shelf>");
        write(format!("rich-{i:03}.wps"), &src);
    }
    // Sparse shards hold several title-only books (so isbn and price
    // stay rare corpus-wide and keep a positive idf weight) plus one
    // archive carrying both tags: tag presence looks identical to a
    // rich shard, but no book→isbn / book→price path exists.
    for i in 0..sparse {
        let mut src = String::from("<shelf>");
        for j in 0..5 {
            src.push_str(&format!("<book><title>husk {i} vol {j}</title></book>"));
        }
        src.push_str(&format!(
            "<archive><isbn>{i}</isbn><price>{i}</price></archive></shelf>"
        ));
        write(format!("sparse-{i:03}.wps"), &src);
    }

    let query = whirlpool_pattern::parse_pattern("//book[./title and ./isbn and ./price]")
        .expect("lazy bench query parses");
    let options = default_options(k);
    let mut open_walls = Vec::new();
    let mut run_fresh = |copts: &CollectionOptions, max_resident: usize| {
        let mut walls = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let t = Instant::now();
            let collection = Collection::open_dir(&dir).expect("open lazy fixture");
            open_walls.push(t.elapsed().as_secs_f64() * 1e3);
            if max_resident > 0 {
                collection.set_max_resident(max_resident);
            }
            let r = evaluate_collection(
                &collection,
                &query,
                &Algorithm::WhirlpoolS,
                &options,
                Normalization::Sparse,
                copts,
            );
            walls.push(r.elapsed.as_secs_f64() * 1e3);
            last = Some(r);
        }
        (median(&mut walls), last.expect("reps >= 1"))
    };
    let (eager_ms, eager_last) = run_fresh(&CollectionOptions::scan_all(), 0);
    let (lazy_ms, lazy_last) = run_fresh(&CollectionOptions::default(), 0);
    let (_capped_ms, capped_last) = run_fresh(&CollectionOptions::default(), 2);
    let _ = std::fs::remove_dir_all(&dir);

    let m = &lazy_last.collection_metrics;
    CollectionLazyStats {
        shards_total: rich + sparse,
        rich_shards: rich,
        k,
        open_ms: median(&mut open_walls),
        eager_wall_ms: eager_ms,
        lazy_wall_ms: lazy_ms,
        shards_visited: m.shards_visited,
        shards_attached: m.shards_attached,
        pruned_before_attach: m.shards_pruned_before_attach,
        capped_evictions: capped_last.collection_metrics.shard_evictions,
        equivalent: collection_answers_equivalent(&eager_last.answers, &lazy_last.answers, 1e-9),
        capped_equivalent: collection_answers_equivalent(
            &eager_last.answers,
            &capped_last.answers,
            1e-9,
        ),
    }
}

/// Cold-vs-warm start benchmark for the version-2 snapshot format.
struct SnapshotBenchStats {
    file_bytes: u64,
    /// Median of parse + index build off the serialized XML — what
    /// every boot paid before snapshots existed.
    cold_ms: f64,
    /// Median of `Snapshot::attach` — header validation + checksum
    /// fold over the mapped file.
    attach_ms: f64,
    mapped: bool,
    /// Whirlpool-S top-k over both backings, tie-aware.
    equivalent: bool,
}

impl SnapshotBenchStats {
    fn speedup(&self) -> f64 {
        if self.attach_ms > 0.0 {
            self.cold_ms / self.attach_ms
        } else {
            1.0
        }
    }
}

/// Benchmarks attaching a prebuilt snapshot against re-deriving the
/// same state from XML. The cold side re-parses the serialized
/// document and rebuilds the tag index each rep; the warm side
/// re-attaches the snapshot file each rep. Both backings then answer
/// the benchmark query and the answer sets are compared tie-aware.
fn snapshot_bench(
    workload: &Workload,
    query: &whirlpool_pattern::TreePattern,
    k: usize,
    reps: usize,
) -> SnapshotBenchStats {
    let xml = whirlpool_xml::write_document(&workload.doc, &whirlpool_xml::WriteOptions::default());
    let path = std::env::temp_dir().join(format!("wp-perfsnap-{}.wps", std::process::id()));
    whirlpool_store::save_snapshot(&workload.doc, &workload.index, &path)
        .expect("write bench snapshot");
    let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    let mut cold_walls = Vec::with_capacity(reps);
    let mut cold_state = None;
    for _ in 0..reps {
        let t = Instant::now();
        let doc = whirlpool_xml::parse_document(&xml).expect("reparse bench document");
        let index = whirlpool_index::TagIndex::build(&doc);
        cold_walls.push(t.elapsed().as_secs_f64() * 1e3);
        cold_state = Some((doc, index));
    }
    let (cold_doc, cold_index) = cold_state.expect("reps >= 1");

    let mut attach_walls = Vec::with_capacity(reps);
    let mut snapshot = None;
    for _ in 0..reps {
        let t = Instant::now();
        let s = whirlpool_store::Snapshot::attach(&path).expect("attach bench snapshot");
        attach_walls.push(t.elapsed().as_secs_f64() * 1e3);
        snapshot = Some(s);
    }
    let snapshot = snapshot.expect("reps >= 1");
    let _ = std::fs::remove_file(&path);

    let options = default_options(k);
    let cold_model =
        whirlpool_score::TfIdfModel::build(&cold_doc, &cold_index, query, Normalization::Sparse);
    let cold_run = whirlpool_core::evaluate_view(
        (&cold_doc).into(),
        cold_index.view(),
        query,
        &cold_model,
        &Algorithm::WhirlpoolS,
        &options,
    );
    let snap_model = whirlpool_score::TfIdfModel::build_view(
        snapshot.doc_view(),
        snapshot.index_view(),
        query,
        Normalization::Sparse,
    );
    let snap_run = whirlpool_core::evaluate_view(
        snapshot.doc_view(),
        snapshot.index_view(),
        query,
        &snap_model,
        &Algorithm::WhirlpoolS,
        &options,
    );

    SnapshotBenchStats {
        file_bytes,
        cold_ms: median(&mut cold_walls),
        attach_ms: median(&mut attach_walls),
        mapped: snapshot.is_mapped(),
        equivalent: answers_equivalent(&snap_run.answers, &cold_run.answers, 1e-9),
    }
}

fn parse_snapshot_pooled(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(i) = text[pos..].find("\"name\": \"") {
        let start = pos + i + "\"name\": \"".len();
        let Some(name_len) = text[start..].find('"') else {
            break;
        };
        let name = text[start..start + name_len].to_string();
        pos = start + name_len;
        let marker = "\"pooled\": {\"wall_ms_median\": ";
        let Some(j) = text[pos..].find(marker) else {
            continue;
        };
        let vstart = pos + j + marker.len();
        let vend = vstart
            + text[vstart..]
                .find([',', '}'])
                .unwrap_or(text.len() - vstart);
        if let Ok(v) = text[vstart..vend].trim().parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// The old snapshot's `doc_label`, for refusing cross-scale diffs.
fn parse_snapshot_label(text: &str) -> Option<String> {
    let marker = "\"doc_label\": \"";
    let start = text.find(marker)? + marker.len();
    let len = text[start..].find('"')?;
    Some(text[start..start + len].to_string())
}

/// The old snapshot's derived `"speedup": [..]` array (virtual scaling
/// curve). Absent in pre-worker-pool snapshots — those diffs skip the
/// scaling comparison rather than fail it.
fn parse_snapshot_speedup(text: &str) -> Option<Vec<f64>> {
    let marker = "\"speedup\": [";
    let start = text.find(marker)? + marker.len();
    let len = text[start..].find(']')?;
    text[start..start + len]
        .split(',')
        .map(|v| v.trim().parse::<f64>().ok())
        .collect()
}

fn answer_key(r: &EvalResult) -> Vec<(usize, u64)> {
    r.answers
        .iter()
        .map(|a| (a.root.index(), a.score.value().to_bits()))
        .collect()
}

fn reduction(unpooled: f64, pooled: f64) -> f64 {
    if unpooled <= 0.0 {
        0.0
    } else {
        1.0 - pooled / unpooled
    }
}

fn config_json(out: &mut String, label: &str, s: &ConfigStats, comma: bool) {
    let m = &s.metrics;
    out.push_str(&format!(
        "      \"{label}\": {{\"wall_ms_median\": {:.3}, \"buffers_allocated\": {}, \
         \"buffers_reused\": {}, \"pool_hit_rate\": {:.4}, \"partials_created\": {}, \
         \"server_ops\": {}, \"pruned\": {}, \"deadline_hits\": {}, \
         \"servers_failed\": {}, \"matches_redistributed\": {}, \
         \"answers_degraded\": {}}}{}\n",
        s.wall_ms_median,
        m.buffers_allocated,
        m.buffers_reused,
        m.pool_hit_rate(),
        m.partials_created,
        m.server_ops,
        m.pruned,
        m.deadline_hits,
        m.servers_failed,
        m.matches_redistributed,
        m.answers_degraded,
        if comma { "," } else { "" },
    ));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let value_of = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let reps: usize = match value_of("--reps") {
        None => {
            if smoke {
                3
            } else {
                5
            }
        }
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("perfsnap: --reps needs a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    };
    let out_path = value_of("--out").unwrap_or_else(|| "BENCH_core.json".to_string());

    // Table 1 defaults (bold column): Q2, 10 Mb, k = 15.
    let (bytes, label) = if smoke {
        (200_000, "smoke")
    } else {
        (10_000_000, "10M")
    };
    let k = 15;
    eprintln!("perfsnap: generating {label} document ({bytes} bytes)...");
    let workload = Workload::of_bytes(bytes, label);
    let query = queries::parse(queries::Q2);
    let model = workload.model(&query);

    let engines = [
        Algorithm::LockStepNoPrune,
        Algorithm::LockStep,
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
    ];

    let pooled_options = default_options(k);
    let unpooled_options = EvalOptions {
        pooling: false,
        ..default_options(k)
    };
    let traced_options = EvalOptions {
        trace: true,
        ..default_options(k)
    };

    let mut rows = Vec::new();
    for algorithm in &engines {
        eprintln!(
            "perfsnap: {} ({} reps, pooled + unpooled + traced)...",
            algorithm.name(),
            reps
        );
        let (unpooled, unpooled_last) = run_config(
            &workload,
            &query,
            &model,
            algorithm,
            &unpooled_options,
            reps,
        );
        let (pooled, pooled_last) =
            run_config(&workload, &query, &model, algorithm, &pooled_options, reps);
        let (traced, traced_last) =
            run_config(&workload, &query, &model, algorithm, &traced_options, reps);
        let trace = traced_last.trace.as_ref();
        rows.push(EngineRow {
            name: algorithm.name(),
            answers_identical: answer_key(&pooled_last) == answer_key(&unpooled_last),
            traced_wall_ms: traced.wall_ms_median,
            traced_identical: answer_key(&traced_last) == answer_key(&pooled_last),
            aggregate: trace.map(TraceAggregate::from_trace).unwrap_or_default(),
            trace_events: trace.map_or(0, |t| t.events.len()),
            pooled,
            unpooled,
        });
    }

    // Scheduler-pool sweep: Whirlpool-M at the pooled defaults with 1,
    // 2, 4, and 8 workers. Every config must return a top-k answer
    // equivalent to the reference — tie-aware, not bit-identical:
    // concurrent interleavings may legitimately admit different members
    // of a tied boundary group (Q2's structural-only scores tie
    // heavily), and `answers_equivalent` accepts exactly those swaps
    // while still rejecting any score change. Each entry carries the
    // real wall-clock median (pins scheduler overhead on the host) and
    // the virtual makespan of the same pool size on `threads` virtual
    // cores (the discrete-event model in `whirlpool_core::vtime` — the
    // honest speedup vehicle on single-core hosts).
    let scaling_reference = {
        let (_, last) = run_config(
            &workload,
            &query,
            &model,
            &Algorithm::LockStepNoPrune,
            &pooled_options,
            1,
        );
        last
    };
    struct ScalingRow {
        threads: usize,
        stats: ConfigStats,
        virtual_ms: f64,
        equivalent: bool,
    }
    let mut scaling = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        eprintln!("perfsnap: Whirlpool-M scaling, threads = {threads} ({reps} reps + vtime)...");
        let options = EvalOptions {
            threads,
            ..default_options(k)
        };
        let (stats, last) = run_config(
            &workload,
            &query,
            &model,
            &Algorithm::WhirlpoolM { processors: None },
            &options,
            reps,
        );
        let vctx = QueryContext::new(
            &workload.doc,
            &workload.index,
            &query,
            &model,
            ContextOptions::default(),
        );
        let sim = simulate_whirlpool_m(
            &vctx,
            &RoutingStrategy::MinAlive,
            k,
            QueuePolicy::MaxFinalScore,
            &VTimeConfig {
                processors: Some(threads),
                threads,
                ..VTimeConfig::default()
            },
        );
        scaling.push(ScalingRow {
            threads,
            equivalent: answers_equivalent(&last.answers, &scaling_reference.answers, 1e-9),
            stats,
            virtual_ms: sim.makespan * 1e3,
        });
    }
    // Whirlpool-S under the same virtual cost model: its operations run
    // strictly sequentially, so its virtual time is the work-sum. The
    // multi-worker configs are expected to beat it (the paper's
    // Whirlpool-M-overtakes-S crossover).
    let s_row = rows
        .iter()
        .find(|r| r.name == "Whirlpool-S")
        .expect("Whirlpool-S row");
    let s_virtual_ms =
        sequential_virtual_time(&s_row.pooled.metrics, &VTimeConfig::default()) * 1e3;
    let scaling_speedup: Vec<f64> = scaling
        .iter()
        .map(|r| {
            if r.virtual_ms > 0.0 {
                scaling[0].virtual_ms / r.virtual_ms
            } else {
                1.0
            }
        })
        .collect();

    // Kernel microbench: per-op latency of the retired Dewey kernel vs
    // the live columnar one, over a sample of root matches.
    let kernel_cap = if smoke { 500 } else { 2000 };
    eprintln!("perfsnap: kernel microbench (Dewey reference vs columnar, {kernel_cap} roots)...");
    let (kernel_dewey, kernel_columnar, kernel_ops) =
        kernel_microbench(&workload, &query, &model, kernel_cap);

    // Daemon serving: steady-state latency percentiles and the shed
    // rate at 2x admission overload, on a fixed medium document (the
    // per-request pipeline rebuilds the score model, so the document
    // scale is deliberately independent of the engine rows above).
    let (serve_items, serve_steady, serve_per_client) =
        if smoke { (40, 20, 5) } else { (200, 100, 25) };
    eprintln!(
        "perfsnap: serve bench ({serve_items} items, {serve_steady} steady requests, \
         2x overload)..."
    );
    let serve = serve_bench(serve_items, serve_steady, serve_per_client);

    // Collection: sharded top-k with corpus idf, threshold sharing, and
    // synopsis pruning, against its own scan-all baseline on a skewed
    // 16-shard corpus.
    let (coll_rich, coll_sparse, coll_bytes, coll_k) = if smoke {
        (4usize, 12usize, 50_000usize, 10usize)
    } else {
        (4, 12, 400_000, 10)
    };
    eprintln!(
        "perfsnap: collection bench ({coll_rich} rich + {coll_sparse} sparse shards, \
         k = {coll_k}, {reps} reps)..."
    );
    let coll = collection_bench(coll_rich, coll_sparse, coll_bytes, coll_k, reps);

    // Lazy collection: open_dir over a directory of snapshot shards,
    // attach-on-visit with path-synopsis ceilings, against an eager
    // scan-all that attaches every shard. The sparse shards carry the
    // query's tags in the wrong arrangement, so only the stored path
    // synopsis can prune them before their payload is read.
    let (lazy_rich, lazy_sparse) = if smoke { (4usize, 60usize) } else { (16, 240) };
    eprintln!(
        "perfsnap: collection-lazy bench ({lazy_rich} rich + {lazy_sparse} arrangement-mismatched \
         shards, k = {coll_k}, {reps} reps)..."
    );
    let lazy = collection_lazy_bench(lazy_rich, lazy_sparse, coll_k, reps);

    // Snapshot attach: the zero-copy warm start against the cold
    // parse+index it replaces, on the same document as the engine rows.
    eprintln!("perfsnap: snapshot bench (cold parse+index vs mmap attach, {reps} reps)...");
    let snap = snapshot_bench(&workload, &query, k, reps);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\"query\": \"Q2\", \"doc_label\": \"{label}\", \"doc_bytes\": {bytes}, \
         \"k\": {k}, \"reps\": {reps}}},\n"
    ));
    json.push_str("  \"engines\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let alloc_red = reduction(
            row.unpooled.metrics.buffers_allocated as f64,
            row.pooled.metrics.buffers_allocated as f64,
        );
        let wall_red = reduction(row.unpooled.wall_ms_median, row.pooled.wall_ms_median);
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", row.name));
        config_json(&mut json, "pooled", &row.pooled, true);
        config_json(&mut json, "unpooled", &row.unpooled, true);
        let trace_overhead = if row.pooled.wall_ms_median > 0.0 {
            row.traced_wall_ms / row.pooled.wall_ms_median - 1.0
        } else {
            0.0
        };
        json.push_str(&format!(
            "      \"alloc_reduction\": {:.4},\n      \"wall_reduction\": {:.4},\n      \
             \"answers_identical\": {},\n      \
             \"trace_overhead\": {{\"traced_wall_ms\": {:.3}, \"overhead_frac\": {:.4}, \
             \"events\": {}, \"answers_identical\": {}}}\n",
            alloc_red,
            wall_red,
            row.answers_identical,
            row.traced_wall_ms,
            trace_overhead,
            row.trace_events,
            row.traced_identical,
        ));
        json.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"scaling\": {{\"engine\": \"Whirlpool-M\", \"mode\": \"threads\", \
         \"whirlpool_s_virtual_ms\": {s_virtual_ms:.3}, \"configs\": [\n"
    ));
    for (i, r) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"wall_ms_median\": {:.3}, \"virtual_ms\": {:.3}, \
             \"server_ops\": {}, \"steal_events\": {}, \"batches_stolen\": {}, \
             \"steal_rate\": {:.4}, \"beats_s_virtual\": {}, \"answers_equivalent\": {}}}{}\n",
            r.threads,
            r.stats.wall_ms_median,
            r.virtual_ms,
            r.stats.metrics.server_ops,
            r.stats.metrics.steal_events,
            r.stats.metrics.batches_stolen,
            r.stats.metrics.steal_rate(),
            r.virtual_ms < s_virtual_ms,
            r.equivalent,
            if i + 1 < scaling.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    let fmt4 = |v: &[f64]| -> String {
        v.iter()
            .map(|x| format!("{x:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    json.push_str(&format!("  \"speedup\": [{}],\n", fmt4(&scaling_speedup)));
    let steal_rates: Vec<f64> = scaling
        .iter()
        .map(|r| r.stats.metrics.steal_rate())
        .collect();
    json.push_str(&format!(
        "  \"steal_rate\": [{}]\n  }},\n",
        fmt4(&steal_rates)
    ));
    let kernel_speedup = if kernel_columnar.median_ns > 0.0 {
        kernel_dewey.median_ns / kernel_columnar.median_ns
    } else {
        1.0
    };
    json.push_str(&format!(
        "  \"kernel\": {{\n    \"ops_per_side\": {kernel_ops},\n"
    ));
    kernel_dewey.push_json(&mut json, "dewey", true);
    kernel_columnar.push_json(&mut json, "columnar", true);
    json.push_str(&format!(
        "    \"median_speedup\": {kernel_speedup:.3}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"serve\": {{\n    \"workers\": {}, \"max_inflight\": {},\n    \
         \"steady\": {{\"requests\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}},\n    \
         \"overload\": {{\"clients\": {}, \"requests\": {}, \"served\": {}, \"shed\": {}, \
         \"shed_rate\": {:.4}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}},\n    \
         \"conserved\": {}\n  }},\n",
        serve.workers,
        serve.max_inflight,
        serve.steady_requests,
        serve.steady_p50_ms,
        serve.steady_p99_ms,
        serve.overload_clients,
        serve.overload_total,
        serve.overload_served,
        serve.overload_shed,
        serve.shed_rate(),
        serve.overload_p50_ms,
        serve.overload_p99_ms,
        serve.conserved,
    ));
    json.push_str(&format!(
        "  \"collection\": {{\n    \"shards_total\": {}, \"rich_shards\": {}, \"k\": {},\n    \
         \"scan_all_wall_ms\": {:.3}, \"sharded_wall_ms\": {:.3}, \"speedup\": {:.3},\n    \
         \"shards_visited\": {}, \"shards_pruned\": {}, \"answers_equivalent\": {}\n  }},\n",
        coll.shards_total,
        coll.rich_shards,
        coll.k,
        coll.scan_all_wall_ms,
        coll.sharded_wall_ms,
        coll.speedup(),
        coll.shards_visited,
        coll.shards_pruned,
        coll.equivalent,
    ));
    json.push_str(&format!(
        "  \"collection_lazy\": {{\n    \"shards_total\": {}, \"rich_shards\": {}, \"k\": {},\n    \
         \"open_ms\": {:.3}, \"eager_wall_ms\": {:.3}, \"lazy_wall_ms\": {:.3}, \
         \"speedup\": {:.3},\n    \"shards_visited\": {}, \"shards_attached\": {}, \
         \"pruned_before_attach\": {}, \"pruned_before_attach_rate\": {:.4},\n    \
         \"capped\": {{\"max_resident\": 2, \"evictions\": {}, \"answers_equivalent\": {}}},\n    \
         \"answers_equivalent\": {}\n  }},\n",
        lazy.shards_total,
        lazy.rich_shards,
        lazy.k,
        lazy.open_ms,
        lazy.eager_wall_ms,
        lazy.lazy_wall_ms,
        lazy.speedup(),
        lazy.shards_visited,
        lazy.shards_attached,
        lazy.pruned_before_attach,
        lazy.pruned_rate(),
        lazy.capped_evictions,
        lazy.capped_equivalent,
        lazy.equivalent,
    ));
    json.push_str(&format!(
        "  \"snapshot\": {{\n    \"file_bytes\": {},\n    \
         \"cold_parse_index_ms\": {:.3}, \"snapshot_attach_ms\": {:.3}, \
         \"speedup\": {:.1},\n    \"mapped\": {}, \"answers_equivalent\": {}\n  }}\n",
        snap.file_bytes,
        snap.cold_ms,
        snap.attach_ms,
        snap.speedup(),
        snap.mapped,
        snap.equivalent,
    ));
    json.push_str("}\n");

    // BENCH_trace.json: the aggregated event stream per engine —
    // score-progress trajectory (threshold vs. server ops), per-server
    // latency histograms, and phase wall time.
    let mut trace_json = String::new();
    trace_json.push_str("{\n");
    trace_json.push_str(&format!(
        "  \"meta\": {{\"query\": \"Q2\", \"doc_label\": \"{label}\", \"doc_bytes\": {bytes}, \
         \"k\": {k}, \"progress_max_points\": 64}},\n"
    ));
    trace_json.push_str("  \"engines\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let overhead_frac = if row.pooled.wall_ms_median > 0.0 {
            row.traced_wall_ms / row.pooled.wall_ms_median - 1.0
        } else {
            0.0
        };
        trace_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"overhead_frac\": {:.4}, \"aggregate\": ",
            row.name, overhead_frac
        ));
        row.aggregate.push_json(&mut trace_json, 64);
        trace_json.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    trace_json.push_str("  ]\n}\n");

    for row in &rows {
        let alloc_red = reduction(
            row.unpooled.metrics.buffers_allocated as f64,
            row.pooled.metrics.buffers_allocated as f64,
        );
        eprintln!(
            "perfsnap: {:16} wall {:8.2} ms -> {:8.2} ms, buffer allocs {:>9} -> {:>9} \
             ({:.1}% fewer), hit rate {:.3}, answers identical: {}",
            row.name,
            row.unpooled.wall_ms_median,
            row.pooled.wall_ms_median,
            row.unpooled.metrics.buffers_allocated,
            row.pooled.metrics.buffers_allocated,
            alloc_red * 100.0,
            row.pooled.metrics.pool_hit_rate(),
            row.answers_identical,
        );
        eprintln!(
            "perfsnap: {:16} traced {:8.2} ms ({:+.1}% vs untraced), {} events, \
             answers identical: {}",
            row.name,
            row.traced_wall_ms,
            if row.pooled.wall_ms_median > 0.0 {
                (row.traced_wall_ms / row.pooled.wall_ms_median - 1.0) * 100.0
            } else {
                0.0
            },
            row.trace_events,
            row.traced_identical,
        );
    }

    for (r, speedup) in scaling.iter().zip(&scaling_speedup) {
        eprintln!(
            "perfsnap: Whirlpool-M   threads {:>2} wall {:8.2} ms, virtual {:8.2} ms \
             (speedup {:.2}x, steal rate {:.3}), answers equivalent: {}",
            r.threads,
            r.stats.wall_ms_median,
            r.virtual_ms,
            speedup,
            r.stats.metrics.steal_rate(),
            r.equivalent,
        );
    }
    eprintln!(
        "perfsnap: Whirlpool-S   virtual {s_virtual_ms:8.2} ms (sequential work-sum); \
         multi-worker M beats it: {}",
        scaling.iter().skip(1).all(|r| r.virtual_ms < s_virtual_ms),
    );

    eprintln!(
        "perfsnap: kernel per-op median {:.0} ns (dewey) -> {:.0} ns (columnar), {:.2}x, \
         {} ops/side",
        kernel_dewey.median_ns, kernel_columnar.median_ns, kernel_speedup, kernel_ops,
    );

    eprintln!(
        "perfsnap: serve steady p50 {:.2} ms / p99 {:.2} ms; 2x overload ({} clients): \
         {}/{} served, shed rate {:.3}, p50 {:.2} ms / p99 {:.2} ms, conserved: {}",
        serve.steady_p50_ms,
        serve.steady_p99_ms,
        serve.overload_clients,
        serve.overload_served,
        serve.overload_total,
        serve.shed_rate(),
        serve.overload_p50_ms,
        serve.overload_p99_ms,
        serve.conserved,
    );

    eprintln!(
        "perfsnap: collection {} shards ({} rich): scan-all {:8.2} ms -> sharded {:8.2} ms \
         ({:.2}x), visited {}, pruned {}, answers equivalent: {}",
        coll.shards_total,
        coll.rich_shards,
        coll.scan_all_wall_ms,
        coll.sharded_wall_ms,
        coll.speedup(),
        coll.shards_visited,
        coll.shards_pruned,
        coll.equivalent,
    );

    eprintln!(
        "perfsnap: collection-lazy {} shards ({} rich): open {:.2} ms, eager {:8.2} ms -> \
         lazy {:8.2} ms ({:.2}x), {} pruned before attach ({:.0}%), {} attached, \
         {} evictions @ max-resident 2, answers equivalent: {}",
        lazy.shards_total,
        lazy.rich_shards,
        lazy.open_ms,
        lazy.eager_wall_ms,
        lazy.lazy_wall_ms,
        lazy.speedup(),
        lazy.pruned_before_attach,
        lazy.pruned_rate() * 100.0,
        lazy.shards_attached,
        lazy.capped_evictions,
        lazy.equivalent && lazy.capped_equivalent,
    );

    eprintln!(
        "perfsnap: snapshot {} bytes: cold parse+index {:8.2} ms -> attach {:8.3} ms \
         ({:.0}x, mapped: {}), answers equivalent: {}",
        snap.file_bytes,
        snap.cold_ms,
        snap.attach_ms,
        snap.speedup(),
        snap.mapped,
        snap.equivalent,
    );

    if rows.iter().any(|r| !r.answers_identical) {
        eprintln!("perfsnap: FAIL — pooled and unpooled runs disagree");
        std::process::exit(1);
    }
    if rows.iter().any(|r| !r.traced_identical) {
        eprintln!("perfsnap: FAIL — tracing changed the answer set");
        std::process::exit(1);
    }
    if scaling.iter().any(|r| !r.equivalent) {
        eprintln!("perfsnap: FAIL — a scaling config returned a non-equivalent answer set");
        std::process::exit(1);
    }
    // Pooled-regression gate: recycling buffers must not cost wall time
    // — on the threaded engine (sharded pools) nor on LockStep (the
    // plain hub-less pool, which regressed once under the scalar
    // evaluate path). 5 % headroom for noise.
    for name in ["Whirlpool-M", "LockStep"] {
        if let Some(m) = rows.iter().find(|r| r.name == name) {
            if m.pooled.wall_ms_median > m.unpooled.wall_ms_median * 1.05 {
                eprintln!(
                    "perfsnap: FAIL — {name} pooled {:.2} ms exceeds unpooled {:.2} ms by >5%",
                    m.pooled.wall_ms_median, m.unpooled.wall_ms_median
                );
                std::process::exit(1);
            }
        }
    }
    // Serve conservation gate: the daemon's outcome counters must
    // account for every admitted request exactly once — a leak here
    // means a worker died or a request settled twice.
    if !serve.conserved {
        eprintln!(
            "perfsnap: FAIL — serve counters violate admitted = exact + degraded + timed_out"
        );
        std::process::exit(1);
    }
    // Scheduler-scaling gate: the virtual 4-worker makespan must not
    // exceed the 1-worker one (virtual time, so it holds on single-core
    // hosts; 5 % headroom for adaptive-routing divergence between the
    // two schedules).
    {
        let one = &scaling[0];
        let four = scaling
            .iter()
            .find(|r| r.threads == 4)
            .expect("4-thread scaling config");
        if four.virtual_ms > one.virtual_ms * 1.05 {
            eprintln!(
                "perfsnap: FAIL — Whirlpool-M virtual makespan at 4 workers ({:.2} ms) \
                 exceeds 1 worker ({:.2} ms)",
                four.virtual_ms, one.virtual_ms
            );
            std::process::exit(1);
        }
    }

    // Collection gates: pruning must fire on the skewed corpus, must
    // not change the answer set, and must not cost wall time over the
    // scan-all baseline (10 % headroom for noise).
    if coll.shards_pruned == 0 {
        eprintln!("perfsnap: FAIL — collection run pruned no shard on the skewed corpus");
        std::process::exit(1);
    }
    if !coll.equivalent {
        eprintln!("perfsnap: FAIL — sharded collection answers diverge from scan-all");
        std::process::exit(1);
    }
    if coll.sharded_wall_ms > coll.scan_all_wall_ms * 1.10 {
        eprintln!(
            "perfsnap: FAIL — sharded collection {:.2} ms exceeds scan-all {:.2} ms by >10%",
            coll.sharded_wall_ms, coll.scan_all_wall_ms
        );
        std::process::exit(1);
    }

    // Lazy-collection gates: the whole point of attach-on-visit is
    // that most of a skewed corpus never touches disk. At least half
    // the shards must be pruned before attach (the fixture is built so
    // tag counts alone cannot do this — only the stored path synopsis
    // can), answers must match the eager scan tie-aware (capped and
    // uncapped), the lazy run must not cost wall time over the eager
    // one (5 % headroom for noise), and the max_resident=2 rerun must
    // actually evict.
    if lazy.pruned_rate() < 0.5 {
        eprintln!(
            "perfsnap: FAIL — lazy collection pruned only {}/{} shards before attach (< 50%)",
            lazy.pruned_before_attach, lazy.shards_total
        );
        std::process::exit(1);
    }
    if !lazy.equivalent || !lazy.capped_equivalent {
        eprintln!(
            "perfsnap: FAIL — lazy collection answers diverge from the eager scan \
             (uncapped equivalent: {}, capped equivalent: {})",
            lazy.equivalent, lazy.capped_equivalent
        );
        std::process::exit(1);
    }
    if lazy.lazy_wall_ms > lazy.eager_wall_ms * 1.05 {
        eprintln!(
            "perfsnap: FAIL — lazy collection {:.2} ms exceeds eager scan-all {:.2} ms by >5%",
            lazy.lazy_wall_ms, lazy.eager_wall_ms
        );
        std::process::exit(1);
    }
    if lazy.capped_evictions == 0 {
        eprintln!(
            "perfsnap: FAIL — max_resident=2 rerun attached {} shards without evicting",
            lazy.shards_attached
        );
        std::process::exit(1);
    }

    // Snapshot gates: attaching must be a pure representation change
    // (tie-aware equivalent answers) and must actually be a warm start
    // — at least 5x faster than the cold parse+index it replaces.
    // The floor is deliberately loose: the measured gap at full scale
    // is orders of magnitude (20x+ on the 10 Mb document), but at
    // smoke scale the fixed mmap + checksum floor (~0.4 ms) dominates
    // a sub-millisecond attach, and the gate only needs to catch an
    // attach path that silently degrades into a rebuild.
    if !snap.equivalent {
        eprintln!("perfsnap: FAIL — snapshot-backed answers diverge from the parsed run");
        std::process::exit(1);
    }
    if snap.speedup() < 5.0 {
        eprintln!(
            "perfsnap: FAIL — snapshot attach {:.3} ms is less than 5x faster than the \
             cold parse+index {:.2} ms",
            snap.attach_ms, snap.cold_ms
        );
        std::process::exit(1);
    }

    if smoke {
        print!("{json}");
    } else {
        let mut file = std::fs::File::create(&out_path)
            .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
        file.write_all(json.as_bytes()).expect("write BENCH json");
        eprintln!("perfsnap: wrote {out_path}");
        let trace_path = "BENCH_trace.json";
        let mut file = std::fs::File::create(trace_path)
            .unwrap_or_else(|e| panic!("cannot create {trace_path}: {e}"));
        file.write_all(trace_json.as_bytes())
            .expect("write BENCH trace json");
        eprintln!("perfsnap: wrote {trace_path}");
    }

    // Snapshot-diff gate: any engine whose pooled median exceeds the
    // old snapshot's by more than 15 % fails the run. Cross-scale
    // comparisons (different doc labels) are refused, not guessed at.
    // Runs after the files are written so a failing run still leaves
    // the new snapshot behind for inspection (CI uploads it).
    if let Some(old_path) = value_of("--compare") {
        let old = std::fs::read_to_string(&old_path)
            .unwrap_or_else(|e| panic!("cannot read {old_path}: {e}"));
        let old_label = parse_snapshot_label(&old);
        if old_label.as_deref() != Some(label) {
            eprintln!(
                "perfsnap: WARN — --compare skipped: {old_path} was taken on doc_label {:?}, \
                 this run is {label:?}",
                old_label.as_deref().unwrap_or("<missing>"),
            );
        } else {
            let baselines = parse_snapshot_pooled(&old);
            let mut regressed = false;
            for row in &rows {
                let Some((_, old_ms)) = baselines.iter().find(|(n, _)| n == row.name) else {
                    eprintln!("perfsnap: WARN — {} absent from {old_path}", row.name);
                    continue;
                };
                let delta = if *old_ms > 0.0 {
                    row.pooled.wall_ms_median / old_ms - 1.0
                } else {
                    0.0
                };
                let verdict = if delta > 0.15 {
                    regressed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                eprintln!(
                    "perfsnap: compare {:16} pooled {:8.2} ms vs {:8.2} ms ({:+.1}%) {verdict}",
                    row.name,
                    row.pooled.wall_ms_median,
                    old_ms,
                    delta * 100.0,
                );
            }
            match parse_snapshot_speedup(&old) {
                None => eprintln!(
                    "perfsnap: WARN — {old_path} carries no scaling speedup array; \
                     scaling comparison skipped"
                ),
                Some(old_speedup) => {
                    for ((r, new_s), old_s) in
                        scaling.iter().zip(&scaling_speedup).zip(&old_speedup)
                    {
                        let verdict = if *new_s < old_s * 0.85 {
                            regressed = true;
                            "REGRESSED"
                        } else {
                            "ok"
                        };
                        eprintln!(
                            "perfsnap: compare scaling @{} workers: speedup {:.2}x vs {:.2}x \
                             {verdict}",
                            r.threads, new_s, old_s,
                        );
                    }
                }
            }
            if regressed {
                eprintln!(
                    "perfsnap: FAIL — pooled wall-clock or scaling speedup regressed against \
                     {old_path}"
                );
                std::process::exit(1);
            }
        }
    }

    if smoke {
        eprintln!("perfsnap: smoke OK");
    }
}
