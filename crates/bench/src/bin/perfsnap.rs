//! Performance snapshot: runs the Table-1 default configuration (Q2,
//! 10 Mb document, k = 15) across all four engines with binding-buffer
//! pooling on and off, and writes the medians plus allocation counters
//! to `BENCH_core.json`. A third traced run per engine pins the cost of
//! the observability layer (`BENCH_core.json`'s `trace_overhead`
//! fields; the untraced rows are the ≤ 2 % regression anchor) and its
//! aggregated event stream — score-progress curve, per-server latency
//! histograms, phase times — goes to `BENCH_trace.json`.
//!
//! ```text
//! cargo run --release -p whirlpool-bench --bin perfsnap
//! cargo run --release -p whirlpool-bench --bin perfsnap -- --smoke
//! cargo run --release -p whirlpool-bench --bin perfsnap -- --reps 7 --out BENCH_core.json
//! ```
//!
//! `--smoke` shrinks the document and repetition count for CI and
//! prints the JSON to stdout instead of writing files; it still fails
//! (exit 1) if any pooled run disagrees with its unpooled twin, and it
//! additionally gates the pooled path's performance: Whirlpool-M's
//! pooled median must not exceed its unpooled median by more than 5 %
//! (the sharded-pool regression guard).
//!
//! A `scaling` section sweeps Whirlpool-M's processor cap (1, 2, 4,
//! unbounded) at the pooled defaults so the snapshot records how the
//! engine behaves as simulated cores are added.
//!
//! A `kernel` section microbenchmarks one server operation in
//! isolation — the retired Dewey-materializing kernel
//! ([`QueryContext::process_at_server_dewey_reference`]) against the
//! live columnar one — as per-op latency medians and log2-ns
//! histograms.
//!
//! `--compare <old BENCH_core.json>` diffs this run's pooled
//! wall-clock medians against a previous snapshot and exits non-zero
//! when any engine regressed by more than 15 % (skipped with a warning
//! when the old snapshot was taken on a different document label).

use std::io::Write as _;
use std::time::Instant;
use whirlpool_bench::aggregate::TraceAggregate;
use whirlpool_bench::{default_options, median, Workload};
use whirlpool_core::{
    Algorithm, ContextOptions, EvalOptions, EvalResult, MetricsSnapshot, QueryContext,
};
use whirlpool_xmark::queries;

struct ConfigStats {
    wall_ms_median: f64,
    metrics: MetricsSnapshot,
}

struct EngineRow {
    name: &'static str,
    pooled: ConfigStats,
    unpooled: ConfigStats,
    answers_identical: bool,
    /// Median wall time with event tracing on, and whether the traced
    /// run returned the same answers (tracing must not perturb results).
    traced_wall_ms: f64,
    traced_identical: bool,
    aggregate: TraceAggregate,
    trace_events: usize,
}

fn run_config(
    workload: &Workload,
    query: &whirlpool_pattern::TreePattern,
    model: &dyn whirlpool_score::ScoreModel,
    algorithm: &Algorithm,
    options: &EvalOptions,
    reps: usize,
) -> (ConfigStats, EvalResult) {
    let mut walls = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let result = workload.run(query, model, algorithm, options);
        walls.push(result.elapsed.as_secs_f64() * 1e3);
        last = Some(result);
    }
    let last = last.expect("reps >= 1");
    (
        ConfigStats {
            wall_ms_median: median(&mut walls),
            metrics: last.metrics,
        },
        last,
    )
}

/// Per-op latency of one server-op kernel: the median and a log2(ns)
/// histogram (bucket `i` counts ops with `2^i <= ns < 2^(i+1)`).
struct KernelSide {
    median_ns: f64,
    hist: [u64; 24],
}

impl KernelSide {
    fn from_samples(mut ns: Vec<f64>) -> KernelSide {
        let mut hist = [0u64; 24];
        for &v in &ns {
            let bucket = (v.max(1.0).log2() as usize).min(23);
            hist[bucket] += 1;
        }
        KernelSide {
            median_ns: median(&mut ns),
            hist,
        }
    }

    fn push_json(&self, out: &mut String, label: &str, comma: bool) {
        let buckets: Vec<String> = self.hist.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "    \"{label}\": {{\"median_ns\": {:.1}, \"hist_log2_ns\": [{}]}}{}\n",
            self.median_ns,
            buckets.join(", "),
            if comma { "," } else { "" },
        ));
    }
}

/// Microbenchmarks one server operation per (sampled root match,
/// server) pair under both kernels. The Dewey reference and the
/// columnar kernel see identical inputs (fresh root matches, same
/// candidate ranges), so the per-op deltas isolate the predicate-check
/// rewrite itself.
fn kernel_microbench(
    workload: &Workload,
    query: &whirlpool_pattern::TreePattern,
    model: &dyn whirlpool_score::ScoreModel,
    cap: usize,
) -> (KernelSide, KernelSide, usize) {
    let ctx = QueryContext::new(
        &workload.doc,
        &workload.index,
        query,
        model,
        ContextOptions::default(),
    );
    let mut pool = ctx.new_pool();
    let matches = ctx.make_root_matches();
    let step = (matches.len() / cap.max(1)).max(1);
    let sample: Vec<_> = matches.iter().step_by(step).take(cap).collect();
    let servers: Vec<whirlpool_pattern::QNodeId> = query.server_ids().collect();

    let mut out = Vec::new();
    let mut dewey_ns = Vec::with_capacity(sample.len() * servers.len());
    let mut columnar_ns = Vec::with_capacity(sample.len() * servers.len());
    for &m in &sample {
        for &server in &servers {
            out.clear();
            let t = Instant::now();
            ctx.process_at_server_dewey_reference(server, m, &mut out, &mut pool);
            dewey_ns.push(t.elapsed().as_nanos() as f64);
            for e in out.drain(..) {
                pool.release(e);
            }
            let t = Instant::now();
            ctx.process_at_server_pooled(server, m, &mut out, &mut pool);
            columnar_ns.push(t.elapsed().as_nanos() as f64);
            for e in out.drain(..) {
                pool.release(e);
            }
        }
    }
    let ops = dewey_ns.len();
    (
        KernelSide::from_samples(dewey_ns),
        KernelSide::from_samples(columnar_ns),
        ops,
    )
}

/// Extracts `(engine name, pooled wall-ms median)` pairs from a
/// previously written snapshot. Hand-rolled to match `config_json`'s
/// output shape — the repo carries no JSON parser dependency.
fn parse_snapshot_pooled(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(i) = text[pos..].find("\"name\": \"") {
        let start = pos + i + "\"name\": \"".len();
        let Some(name_len) = text[start..].find('"') else {
            break;
        };
        let name = text[start..start + name_len].to_string();
        pos = start + name_len;
        let marker = "\"pooled\": {\"wall_ms_median\": ";
        let Some(j) = text[pos..].find(marker) else {
            continue;
        };
        let vstart = pos + j + marker.len();
        let vend = vstart
            + text[vstart..]
                .find([',', '}'])
                .unwrap_or(text.len() - vstart);
        if let Ok(v) = text[vstart..vend].trim().parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// The old snapshot's `doc_label`, for refusing cross-scale diffs.
fn parse_snapshot_label(text: &str) -> Option<String> {
    let marker = "\"doc_label\": \"";
    let start = text.find(marker)? + marker.len();
    let len = text[start..].find('"')?;
    Some(text[start..start + len].to_string())
}

fn answer_key(r: &EvalResult) -> Vec<(usize, u64)> {
    r.answers
        .iter()
        .map(|a| (a.root.index(), a.score.value().to_bits()))
        .collect()
}

fn reduction(unpooled: f64, pooled: f64) -> f64 {
    if unpooled <= 0.0 {
        0.0
    } else {
        1.0 - pooled / unpooled
    }
}

fn config_json(out: &mut String, label: &str, s: &ConfigStats, comma: bool) {
    let m = &s.metrics;
    out.push_str(&format!(
        "      \"{label}\": {{\"wall_ms_median\": {:.3}, \"buffers_allocated\": {}, \
         \"buffers_reused\": {}, \"pool_hit_rate\": {:.4}, \"partials_created\": {}, \
         \"server_ops\": {}, \"pruned\": {}, \"deadline_hits\": {}, \
         \"servers_failed\": {}, \"matches_redistributed\": {}, \
         \"answers_degraded\": {}}}{}\n",
        s.wall_ms_median,
        m.buffers_allocated,
        m.buffers_reused,
        m.pool_hit_rate(),
        m.partials_created,
        m.server_ops,
        m.pruned,
        m.deadline_hits,
        m.servers_failed,
        m.matches_redistributed,
        m.answers_degraded,
        if comma { "," } else { "" },
    ));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let value_of = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let reps: usize = match value_of("--reps") {
        None => {
            if smoke {
                3
            } else {
                5
            }
        }
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("perfsnap: --reps needs a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    };
    let out_path = value_of("--out").unwrap_or_else(|| "BENCH_core.json".to_string());

    // Table 1 defaults (bold column): Q2, 10 Mb, k = 15.
    let (bytes, label) = if smoke {
        (200_000, "smoke")
    } else {
        (10_000_000, "10M")
    };
    let k = 15;
    eprintln!("perfsnap: generating {label} document ({bytes} bytes)...");
    let workload = Workload::of_bytes(bytes, label);
    let query = queries::parse(queries::Q2);
    let model = workload.model(&query);

    let engines = [
        Algorithm::LockStepNoPrune,
        Algorithm::LockStep,
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
    ];

    let pooled_options = default_options(k);
    let unpooled_options = EvalOptions {
        pooling: false,
        ..default_options(k)
    };
    let traced_options = EvalOptions {
        trace: true,
        ..default_options(k)
    };

    let mut rows = Vec::new();
    for algorithm in &engines {
        eprintln!(
            "perfsnap: {} ({} reps, pooled + unpooled + traced)...",
            algorithm.name(),
            reps
        );
        let (unpooled, unpooled_last) = run_config(
            &workload,
            &query,
            &model,
            algorithm,
            &unpooled_options,
            reps,
        );
        let (pooled, pooled_last) =
            run_config(&workload, &query, &model, algorithm, &pooled_options, reps);
        let (traced, traced_last) =
            run_config(&workload, &query, &model, algorithm, &traced_options, reps);
        let trace = traced_last.trace.as_ref();
        rows.push(EngineRow {
            name: algorithm.name(),
            answers_identical: answer_key(&pooled_last) == answer_key(&unpooled_last),
            traced_wall_ms: traced.wall_ms_median,
            traced_identical: answer_key(&traced_last) == answer_key(&pooled_last),
            aggregate: trace.map(TraceAggregate::from_trace).unwrap_or_default(),
            trace_events: trace.map_or(0, |t| t.events.len()),
            pooled,
            unpooled,
        });
    }

    // Processor-count sweep: Whirlpool-M at the pooled defaults with
    // the semaphore cap at 1, 2, 4, and unbounded. Every config must
    // return the reference answer set; the snapshot records how wall
    // time responds to added (simulated) cores.
    let reference_key = answer_key(&{
        let (_, last) = run_config(
            &workload,
            &query,
            &model,
            &Algorithm::LockStepNoPrune,
            &pooled_options,
            1,
        );
        last
    });
    let mut scaling = Vec::new();
    for processors in [Some(1usize), Some(2), Some(4), None] {
        let label = processors.map_or("unbounded".to_string(), |p| p.to_string());
        eprintln!("perfsnap: Whirlpool-M scaling, processors = {label} ({reps} reps)...");
        let (stats, last) = run_config(
            &workload,
            &query,
            &model,
            &Algorithm::WhirlpoolM { processors },
            &pooled_options,
            reps,
        );
        scaling.push((processors, stats, answer_key(&last) == reference_key));
    }

    // Kernel microbench: per-op latency of the retired Dewey kernel vs
    // the live columnar one, over a sample of root matches.
    let kernel_cap = if smoke { 500 } else { 2000 };
    eprintln!("perfsnap: kernel microbench (Dewey reference vs columnar, {kernel_cap} roots)...");
    let (kernel_dewey, kernel_columnar, kernel_ops) =
        kernel_microbench(&workload, &query, &model, kernel_cap);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"meta\": {{\"query\": \"Q2\", \"doc_label\": \"{label}\", \"doc_bytes\": {bytes}, \
         \"k\": {k}, \"reps\": {reps}}},\n"
    ));
    json.push_str("  \"engines\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let alloc_red = reduction(
            row.unpooled.metrics.buffers_allocated as f64,
            row.pooled.metrics.buffers_allocated as f64,
        );
        let wall_red = reduction(row.unpooled.wall_ms_median, row.pooled.wall_ms_median);
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", row.name));
        config_json(&mut json, "pooled", &row.pooled, true);
        config_json(&mut json, "unpooled", &row.unpooled, true);
        let trace_overhead = if row.pooled.wall_ms_median > 0.0 {
            row.traced_wall_ms / row.pooled.wall_ms_median - 1.0
        } else {
            0.0
        };
        json.push_str(&format!(
            "      \"alloc_reduction\": {:.4},\n      \"wall_reduction\": {:.4},\n      \
             \"answers_identical\": {},\n      \
             \"trace_overhead\": {{\"traced_wall_ms\": {:.3}, \"overhead_frac\": {:.4}, \
             \"events\": {}, \"answers_identical\": {}}}\n",
            alloc_red,
            wall_red,
            row.answers_identical,
            row.traced_wall_ms,
            trace_overhead,
            row.trace_events,
            row.traced_identical,
        ));
        json.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"scaling\": {\"engine\": \"Whirlpool-M\", \"configs\": [\n");
    for (i, (processors, stats, identical)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"processors\": {}, \"wall_ms_median\": {:.3}, \"server_ops\": {}, \
             \"answers_identical\": {}}}{}\n",
            processors.map_or("null".to_string(), |p| p.to_string()),
            stats.wall_ms_median,
            stats.metrics.server_ops,
            identical,
            if i + 1 < scaling.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]},\n");
    let kernel_speedup = if kernel_columnar.median_ns > 0.0 {
        kernel_dewey.median_ns / kernel_columnar.median_ns
    } else {
        1.0
    };
    json.push_str(&format!(
        "  \"kernel\": {{\n    \"ops_per_side\": {kernel_ops},\n"
    ));
    kernel_dewey.push_json(&mut json, "dewey", true);
    kernel_columnar.push_json(&mut json, "columnar", true);
    json.push_str(&format!(
        "    \"median_speedup\": {kernel_speedup:.3}\n  }}\n"
    ));
    json.push_str("}\n");

    // BENCH_trace.json: the aggregated event stream per engine —
    // score-progress trajectory (threshold vs. server ops), per-server
    // latency histograms, and phase wall time.
    let mut trace_json = String::new();
    trace_json.push_str("{\n");
    trace_json.push_str(&format!(
        "  \"meta\": {{\"query\": \"Q2\", \"doc_label\": \"{label}\", \"doc_bytes\": {bytes}, \
         \"k\": {k}, \"progress_max_points\": 64}},\n"
    ));
    trace_json.push_str("  \"engines\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let overhead_frac = if row.pooled.wall_ms_median > 0.0 {
            row.traced_wall_ms / row.pooled.wall_ms_median - 1.0
        } else {
            0.0
        };
        trace_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"overhead_frac\": {:.4}, \"aggregate\": ",
            row.name, overhead_frac
        ));
        row.aggregate.push_json(&mut trace_json, 64);
        trace_json.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    trace_json.push_str("  ]\n}\n");

    for row in &rows {
        let alloc_red = reduction(
            row.unpooled.metrics.buffers_allocated as f64,
            row.pooled.metrics.buffers_allocated as f64,
        );
        eprintln!(
            "perfsnap: {:16} wall {:8.2} ms -> {:8.2} ms, buffer allocs {:>9} -> {:>9} \
             ({:.1}% fewer), hit rate {:.3}, answers identical: {}",
            row.name,
            row.unpooled.wall_ms_median,
            row.pooled.wall_ms_median,
            row.unpooled.metrics.buffers_allocated,
            row.pooled.metrics.buffers_allocated,
            alloc_red * 100.0,
            row.pooled.metrics.pool_hit_rate(),
            row.answers_identical,
        );
        eprintln!(
            "perfsnap: {:16} traced {:8.2} ms ({:+.1}% vs untraced), {} events, \
             answers identical: {}",
            row.name,
            row.traced_wall_ms,
            if row.pooled.wall_ms_median > 0.0 {
                (row.traced_wall_ms / row.pooled.wall_ms_median - 1.0) * 100.0
            } else {
                0.0
            },
            row.trace_events,
            row.traced_identical,
        );
    }

    for (processors, stats, identical) in &scaling {
        eprintln!(
            "perfsnap: Whirlpool-M   processors {:>9} wall {:8.2} ms, answers identical: {}",
            processors.map_or("unbounded".to_string(), |p| p.to_string()),
            stats.wall_ms_median,
            identical,
        );
    }

    eprintln!(
        "perfsnap: kernel per-op median {:.0} ns (dewey) -> {:.0} ns (columnar), {:.2}x, \
         {} ops/side",
        kernel_dewey.median_ns, kernel_columnar.median_ns, kernel_speedup, kernel_ops,
    );

    if rows.iter().any(|r| !r.answers_identical) {
        eprintln!("perfsnap: FAIL — pooled and unpooled runs disagree");
        std::process::exit(1);
    }
    if rows.iter().any(|r| !r.traced_identical) {
        eprintln!("perfsnap: FAIL — tracing changed the answer set");
        std::process::exit(1);
    }
    if scaling.iter().any(|(_, _, identical)| !identical) {
        eprintln!("perfsnap: FAIL — a scaling config changed the answer set");
        std::process::exit(1);
    }
    // Pooled-regression gate: with sharded pools, recycling buffers must
    // not cost wall time on the threaded engine. 5 % headroom for noise.
    if let Some(m) = rows.iter().find(|r| r.name == "Whirlpool-M") {
        if m.pooled.wall_ms_median > m.unpooled.wall_ms_median * 1.05 {
            eprintln!(
                "perfsnap: FAIL — Whirlpool-M pooled {:.2} ms exceeds unpooled {:.2} ms by >5%",
                m.pooled.wall_ms_median, m.unpooled.wall_ms_median
            );
            std::process::exit(1);
        }
    }

    if smoke {
        print!("{json}");
    } else {
        let mut file = std::fs::File::create(&out_path)
            .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
        file.write_all(json.as_bytes()).expect("write BENCH json");
        eprintln!("perfsnap: wrote {out_path}");
        let trace_path = "BENCH_trace.json";
        let mut file = std::fs::File::create(trace_path)
            .unwrap_or_else(|e| panic!("cannot create {trace_path}: {e}"));
        file.write_all(trace_json.as_bytes())
            .expect("write BENCH trace json");
        eprintln!("perfsnap: wrote {trace_path}");
    }

    // Snapshot-diff gate: any engine whose pooled median exceeds the
    // old snapshot's by more than 15 % fails the run. Cross-scale
    // comparisons (different doc labels) are refused, not guessed at.
    // Runs after the files are written so a failing run still leaves
    // the new snapshot behind for inspection (CI uploads it).
    if let Some(old_path) = value_of("--compare") {
        let old = std::fs::read_to_string(&old_path)
            .unwrap_or_else(|e| panic!("cannot read {old_path}: {e}"));
        let old_label = parse_snapshot_label(&old);
        if old_label.as_deref() != Some(label) {
            eprintln!(
                "perfsnap: WARN — --compare skipped: {old_path} was taken on doc_label {:?}, \
                 this run is {label:?}",
                old_label.as_deref().unwrap_or("<missing>"),
            );
        } else {
            let baselines = parse_snapshot_pooled(&old);
            let mut regressed = false;
            for row in &rows {
                let Some((_, old_ms)) = baselines.iter().find(|(n, _)| n == row.name) else {
                    eprintln!("perfsnap: WARN — {} absent from {old_path}", row.name);
                    continue;
                };
                let delta = if *old_ms > 0.0 {
                    row.pooled.wall_ms_median / old_ms - 1.0
                } else {
                    0.0
                };
                let verdict = if delta > 0.15 {
                    regressed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                eprintln!(
                    "perfsnap: compare {:16} pooled {:8.2} ms vs {:8.2} ms ({:+.1}%) {verdict}",
                    row.name,
                    row.pooled.wall_ms_median,
                    old_ms,
                    delta * 100.0,
                );
            }
            if regressed {
                eprintln!("perfsnap: FAIL — pooled wall-clock regressed >15% against {old_path}");
                std::process::exit(1);
            }
        }
    }

    if smoke {
        eprintln!("perfsnap: smoke OK");
    }
}
