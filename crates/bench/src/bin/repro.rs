//! Regenerates every table and figure of the paper's evaluation
//! (§6.3). Each experiment prints the same rows/series the paper
//! reports; absolute numbers differ (different hardware, Rust vs C++,
//! synthetic XMark), the *shapes* are the reproduction target.
//!
//! ```text
//! cargo run --release -p whirlpool-bench --bin repro -- all
//! cargo run --release -p whirlpool-bench --bin repro -- fig3 fig6 table2
//! cargo run --release -p whirlpool-bench --bin repro -- --quick all
//! ```
//!
//! `--quick` scales document sizes down ~20× for smoke runs.

use std::time::Instant;
use whirlpool_bench::{
    default_options, fig3_plans, fig3_run, median, millis, static_options, Workload, WorkloadCache,
};
use whirlpool_core::vtime::{sequential_virtual_time, simulate_whirlpool_m, VTimeConfig};
use whirlpool_core::{Algorithm, ContextOptions, QueryContext, QueuePolicy, RoutingStrategy};
use whirlpool_pattern::{permutations, QNodeId, StaticPlan, TreePattern};
use whirlpool_xmark::queries;

/// Experiment scale: document sizes in bytes for the paper's 1/10/50 Mb
/// points, and the default document.
struct Scale {
    small: usize,
    medium: usize,
    large: usize,
}

impl Scale {
    fn full() -> Self {
        Scale {
            small: 1_000_000,
            medium: 10_000_000,
            large: 50_000_000,
        }
    }

    fn quick() -> Self {
        Scale {
            small: 50_000,
            medium: 500_000,
            large: 2_500_000,
        }
    }

    fn labels(&self) -> [(usize, &'static str); 3] {
        [
            (self.small, "1M"),
            (self.medium, "10M"),
            (self.large, "50M"),
        ]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = ids.is_empty() || ids.contains(&"all");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let mut cache = WorkloadCache::new();

    let wants = |id: &str| all || ids.contains(&id);
    let start = Instant::now();

    if wants("fig3") {
        fig3();
    }
    if wants("fig5") {
        fig5(&mut cache, &scale);
    }
    if wants("fig6") || wants("fig7") {
        fig67(&mut cache, &scale);
    }
    if wants("fig8") {
        fig8(&mut cache, &scale);
    }
    if wants("fig9") {
        fig9(&mut cache, &scale);
    }
    if wants("fig10") {
        fig10(&mut cache, &scale);
    }
    if wants("fig11") {
        fig11(&mut cache, &scale);
    }
    if wants("table2") {
        table2(&mut cache, &scale);
    }
    if wants("scoring") {
        scoring(quick);
    }
    if wants("growth") {
        growth(&mut cache, &scale);
    }
    if wants("norms") {
        norms(&mut cache, &scale);
    }

    eprintln!("\ntotal repro time: {:.1}s", start.elapsed().as_secs_f64());
}

// -------------------------------------------------------------------
// Extra experiment: "Varying Scoring Function" (§6.3.5, text-only in
// the paper) — sparse scoring prunes faster; dense scoring narrows the
// score spread and slows pruning.
// -------------------------------------------------------------------
fn norms(cache: &mut WorkloadCache, scale: &Scale) {
    banner(
        "Scoring functions — sparse vs dense normalizations and random          score models (Q2, k=15; paper §6.3.5 'Varying Scoring Function')",
    );
    use whirlpool_score::{Normalization, RandomScores, ScoreModel, TfIdfModel};
    let w = default_workload(cache, scale);
    let query = queries::parse(queries::Q2);

    let models: Vec<(&str, Box<dyn ScoreModel>)> = vec![
        (
            "tf*idf sparse",
            Box::new(TfIdfModel::build(
                &w.doc,
                &w.index,
                &query,
                Normalization::Sparse,
            )),
        ),
        (
            "tf*idf dense",
            Box::new(TfIdfModel::build(
                &w.doc,
                &w.index,
                &query,
                Normalization::Dense,
            )),
        ),
        (
            "random sparse",
            Box::new(RandomScores::sparse(7, query.len())),
        ),
        (
            "random dense",
            Box::new(RandomScores::dense(7, query.len())),
        ),
    ];

    println!(
        "{:<16} {:<14} {:>12} {:>12} {:>14} {:>10}",
        "scoring", "engine", "time (ms)", "server ops", "matches", "pruned"
    );
    for (name, model) in &models {
        for alg in [
            Algorithm::WhirlpoolS,
            Algorithm::WhirlpoolM { processors: None },
        ] {
            let r = w.run(&query, model.as_ref(), &alg, &default_options(15));
            println!(
                "{:<16} {:<14} {:>12.1} {:>12} {:>14} {:>10}",
                name,
                alg.name(),
                r.elapsed.as_secs_f64() * 1e3,
                r.metrics.server_ops,
                r.metrics.partials_created,
                r.metrics.pruned
            );
        }
    }
    println!(
        "
(sparse spreads final scores -> the k-th threshold rises quickly and"
    );
    println!(" prunes more; dense bunches scores -> less pruning, more work)");
}

// -------------------------------------------------------------------
// Extra experiment: threshold growth (the mechanism behind the paper's
// §6.3.5 observations) — how fast the k-th score rises per unit of
// work in LockStep vs Whirlpool-S.
// -------------------------------------------------------------------
fn growth(cache: &mut WorkloadCache, scale: &Scale) {
    banner(
        "Threshold growth — pruning threshold (k-th best score) as a function          of evaluation progress (Q2, k=15)",
    );
    use whirlpool_bench::trace::{
        lockstep_growth, threshold_at_fraction, threshold_at_ops, whirlpool_s_growth,
    };
    let w = default_workload(cache, scale);
    let query = queries::parse(queries::Q2);
    let model = w.model(&query);
    let plan = StaticPlan::in_id_order(query.server_ids().count());

    let ctx = QueryContext::new(&w.doc, &w.index, &query, &model, ContextOptions::default());
    let lockstep = lockstep_growth(&ctx, &plan, 15);
    let ctx2 = QueryContext::new(&w.doc, &w.index, &query, &model, ContextOptions::default());
    let adaptive = whirlpool_s_growth(&ctx2, &RoutingStrategy::MinAlive, 15);

    println!(
        "(total ops: LockStep {}, Whirlpool-S {})\n",
        lockstep.last().map_or(0, |p| p.ops),
        adaptive.last().map_or(0, |p| p.ops)
    );
    let total = lockstep
        .last()
        .map_or(0, |p| p.ops)
        .max(adaptive.last().map_or(0, |p| p.ops));
    println!(
        "{:>14} {:>14} {:>14}",
        "server ops", "LockStep", "Whirlpool-S"
    );
    let mut ops = total / 64;
    while ops <= total {
        println!(
            "{:>14} {:>14.4} {:>14.4}",
            ops,
            threshold_at_ops(&lockstep, ops),
            threshold_at_ops(&adaptive, ops)
        );
        ops *= 2;
    }
    let _ = threshold_at_fraction(&lockstep, 1.0);
    println!("\n(threshold is the k-th best current score; higher earlier = more pruning,");
    println!(" and the adaptive engine finishes in fewer total ops)");
}

// -------------------------------------------------------------------
// Extra experiment (the paper's §6.2.2 deferred validation): does the
// tf*idf scoring function rank answers by structural fidelity?
// -------------------------------------------------------------------
fn scoring(quick: bool) {
    banner(
        "Scoring validation (paper future work, §6.2.2) — ranking quality          over a corpus planted at known distortion levels",
    );
    let per_level = if quick { 25 } else { 100 };
    let v = whirlpool_bench::scoring::validate(42, per_level);
    println!("query: {}", whirlpool_bench::scoring::VALIDATION_QUERY);
    println!("{per_level} books per distortion level\n");
    println!(
        "{:<44} {:>10} {:>10}",
        "distortion level", "mean rank", "mean score"
    );
    let labels = [
        "0: exact match",
        "1: title nested (edge generalization)",
        "2: title + price nested",
        "3: title nested, price missing",
        "4: only a nested title",
        "5: irrelevant (wrong title)",
    ];
    for (l, label) in labels.iter().enumerate() {
        println!(
            "{:<44} {:>10.1} {:>10.4}",
            label, v.mean_rank[l], v.mean_score[l]
        );
    }
    println!(
        "\nprecision@{per_level} (ground truth = exact): {:.3}",
        v.precision_at_k
    );
    println!(
        "Kendall tau (distortion vs rank):       {:.3}",
        v.kendall_tau
    );
}

fn banner(title: &str) {
    println!("\n======================================================================");
    println!("{title}");
    println!("======================================================================");
}

/// The default workload (paper Table 1 bold: Q2, 10 Mb, k = 15,
/// sparse).
fn default_workload<'c>(cache: &'c mut WorkloadCache, scale: &Scale) -> &'c Workload {
    cache.bytes(scale.medium, "10M")
}

// -------------------------------------------------------------------
// Figure 3 — the motivating example: no static plan dominates.
// -------------------------------------------------------------------
fn fig3() {
    banner(
        "Figure 3 — Adaptivity example: join operations of all 6 static plans \
         of /book[./title and ./location and ./price] on book (d), vs currentTopK",
    );
    println!("(plan numbering as in the paper: 6 = price,title,location)");
    let plans = fig3_plans();
    print!("{:>12}", "currentTopK");
    for (name, _) in &plans {
        print!("{name:>9}");
    }
    println!();
    let mut tau = 0.0;
    while tau <= 1.0 + 1e-9 {
        print!("{tau:>12.1}");
        for (_, plan) in &plans {
            print!("{:>9}", fig3_run(plan, tau).server_ops);
        }
        println!();
        tau += 0.1;
    }
    println!("\n(unit: partial matches processed by servers; the paper counts");
    println!(" join-predicate comparisons — same shape, different constant)");
}

// -------------------------------------------------------------------
// Figure 5 — adaptive routing strategies.
// -------------------------------------------------------------------
fn fig5(cache: &mut WorkloadCache, scale: &Scale) {
    banner(
        "Figure 5 — Query execution time for Whirlpool-S and Whirlpool-M, \
         for adaptive routing strategies (default setting: Q2, 10M, k=15, sparse)",
    );
    let w = default_workload(cache, scale);
    let query = queries::parse(queries::Q2);
    let model = w.model(&query);
    println!(
        "{:<14} {:>22} {:>16} {:>16}",
        "engine", "routing", "time (ms)", "server ops"
    );
    for alg in [
        Algorithm::WhirlpoolS,
        Algorithm::WhirlpoolM { processors: None },
    ] {
        for routing in [
            RoutingStrategy::MaxScore,
            RoutingStrategy::MinScore,
            RoutingStrategy::MinAlive,
        ] {
            let mut options = default_options(15);
            options.routing = routing.clone();
            let r = w.run(&query, &model, &alg, &options);
            println!(
                "{:<14} {:>22} {:>16.2} {:>16}",
                alg.name(),
                routing.name(),
                r.elapsed.as_secs_f64() * 1e3,
                r.metrics.server_ops
            );
        }
    }
}

// -------------------------------------------------------------------
// Figures 6 and 7 — static (min/median/max over all 120 permutations)
// vs adaptive, for every engine: execution time and server operations.
// -------------------------------------------------------------------
fn fig67(cache: &mut WorkloadCache, scale: &Scale) {
    banner(
        "Figures 6 & 7 — LockStep-NoPrun, LockStep, Whirlpool-S, Whirlpool-M \
         with static routing (min/median/max over all 120 permutations) and \
         adaptive routing (default setting)",
    );
    let w = default_workload(cache, scale);
    let query = queries::parse(queries::Q2);
    let model = w.model(&query);
    let servers: Vec<QNodeId> = query.server_ids().collect();
    let perms = permutations(&servers);
    println!("({} static permutations per engine)", perms.len());

    struct Row {
        name: &'static str,
        time_min: f64,
        time_med: f64,
        time_max: f64,
        ops_min: f64,
        ops_med: f64,
        ops_max: f64,
        adaptive_time: Option<f64>,
        adaptive_ops: Option<f64>,
    }

    let engines: Vec<(Algorithm, bool)> = vec![
        (Algorithm::LockStepNoPrune, false),
        (Algorithm::LockStep, false),
        (Algorithm::WhirlpoolS, true),
        (Algorithm::WhirlpoolM { processors: None }, true),
    ];

    let mut rows = Vec::new();
    for (alg, has_adaptive) in engines {
        let mut times = Vec::new();
        let mut ops = Vec::new();
        for perm in &perms {
            let options = static_options(15, StaticPlan::new(perm.clone()));
            let r = w.run(&query, &model, &alg, &options);
            times.push(r.elapsed.as_secs_f64() * 1e3);
            ops.push(r.metrics.server_ops as f64);
        }
        let (adaptive_time, adaptive_ops) = if has_adaptive {
            let r = w.run(&query, &model, &alg, &default_options(15));
            (
                Some(r.elapsed.as_secs_f64() * 1e3),
                Some(r.metrics.server_ops as f64),
            )
        } else {
            (None, None)
        };
        rows.push(Row {
            name: alg.name(),
            time_min: *times.iter().min_by(|a, b| a.total_cmp(b)).unwrap(),
            time_max: *times.iter().max_by(|a, b| a.total_cmp(b)).unwrap(),
            time_med: median(&mut times),
            ops_min: *ops.iter().min_by(|a, b| a.total_cmp(b)).unwrap(),
            ops_max: *ops.iter().max_by(|a, b| a.total_cmp(b)).unwrap(),
            ops_med: median(&mut ops),
            adaptive_time,
            adaptive_ops,
        });
    }

    println!("\nFigure 6 — query execution time (ms):");
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>12}",
        "engine", "min(STATIC)", "median(STATIC)", "max(STATIC)", "ADAPTIVE"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12.1} {:>14.1} {:>12.1} {:>12}",
            r.name,
            r.time_min,
            r.time_med,
            r.time_max,
            r.adaptive_time
                .map_or("-".to_string(), |t| format!("{t:.1}")),
        );
    }

    println!("\nFigure 7 — number of server operations:");
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>12}",
        "engine", "min(STATIC)", "median(STATIC)", "max(STATIC)", "ADAPTIVE"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12.0} {:>14.0} {:>12.0} {:>12}",
            r.name,
            r.ops_min,
            r.ops_med,
            r.ops_max,
            r.adaptive_ops
                .map_or("-".to_string(), |o| format!("{o:.0}")),
        );
    }
}

// -------------------------------------------------------------------
// Figure 8 — the cost of adaptivity: injected per-operation cost sweep.
// -------------------------------------------------------------------
fn fig8(cache: &mut WorkloadCache, scale: &Scale) {
    banner(
        "Figure 8 — Ratio of query execution time over the best \
         LockStep-NoPrun time, vs per-operation cost (Q2, k=15)",
    );
    // A smaller document keeps the ms-scale operation sweeps tractable;
    // the ratio is scale-free.
    let w = cache.bytes(scale.small, "1M");
    let query = queries::parse(queries::Q2);
    let model = w.model(&query);
    let plan = StaticPlan::in_id_order(query.server_ids().count());

    let costs_ms = [0.0, 0.01, 0.1, 0.5, 1.0];
    println!(
        "{:>14} {:>22} {:>20} {:>12} {:>18}",
        "op cost (ms)", "Whirlpool-S ADAPTIVE", "Whirlpool-S STATIC", "LockStep", "LockStep-NoPrun"
    );
    for &cost in &costs_ms {
        let op_cost = if cost == 0.0 {
            None
        } else {
            Some(millis(cost))
        };
        let run = |alg: &Algorithm, routing: RoutingStrategy| -> f64 {
            let mut options = default_options(15);
            options.routing = routing;
            options.op_cost = op_cost;
            w.run(&query, &model, alg, &options).elapsed.as_secs_f64()
        };
        let noprune = run(
            &Algorithm::LockStepNoPrune,
            RoutingStrategy::Static(plan.clone()),
        );
        let lockstep = run(&Algorithm::LockStep, RoutingStrategy::Static(plan.clone()));
        let ws_static = run(
            &Algorithm::WhirlpoolS,
            RoutingStrategy::Static(plan.clone()),
        );
        let ws_adaptive = run(&Algorithm::WhirlpoolS, RoutingStrategy::MinAlive);
        println!(
            "{:>14.2} {:>22.3} {:>20.3} {:>12.3} {:>18.3}",
            cost,
            ws_adaptive / noprune,
            ws_static / noprune,
            lockstep / noprune,
            1.0
        );
    }
    println!("\n(ratios < 1 mean faster than LockStep-NoPrun)");
}

// -------------------------------------------------------------------
// Figure 9 — parallelism: Whirlpool-M over Whirlpool-S time ratio for
// 1, 2, 4, ∞ processors (virtual-time schedule simulation).
// -------------------------------------------------------------------
fn fig9(cache: &mut WorkloadCache, scale: &Scale) {
    banner(
        "Figure 9 — Ratio of Whirlpool-M over Whirlpool-S execution time, \
         vs processors (virtual-time discrete-event schedule; 10M, k=15)",
    );
    println!("(host has 1 CPU: the processor sweep replays the Whirlpool-M task");
    println!(" graph under a p-processor constraint with the paper's ~1.8 ms op cost)");
    let w = default_workload(cache, scale);
    let cfg = VTimeConfig::default();

    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12}",
        "query", "1 proc", "2 procs", "4 procs", "inf procs"
    );
    for (name, query) in queries::benchmark_queries() {
        let model = w.model(&query);

        // Whirlpool-S virtual time from its real operation counts.
        let s_result = w.run(&query, &model, &Algorithm::WhirlpoolS, &default_options(15));
        let s_time = sequential_virtual_time(&s_result.metrics, &cfg);

        print!("{name:<6}");
        for procs in [Some(1), Some(2), Some(4), None] {
            let ctx =
                QueryContext::new(&w.doc, &w.index, &query, &model, ContextOptions::default());
            let sim = simulate_whirlpool_m(
                &ctx,
                &RoutingStrategy::MinAlive,
                15,
                QueuePolicy::MaxFinalScore,
                &VTimeConfig {
                    processors: procs,
                    ..cfg.clone()
                },
            );
            print!("{:>12.3}", sim.makespan / s_time);
        }
        println!();
    }
    println!("\n(ratio < 1: Whirlpool-M faster than Whirlpool-S)");
}

// -------------------------------------------------------------------
// Figure 10 — varying k and query size.
// -------------------------------------------------------------------
fn fig10(cache: &mut WorkloadCache, scale: &Scale) {
    banner("Figure 10 — Query execution time vs k and query size (10M document)");
    let w = default_workload(cache, scale);
    println!(
        "{:<6} {:>5} {:>20} {:>20} {:>14} {:>14}",
        "query", "k", "Whirlpool-S (ms)", "Whirlpool-M (ms)", "W-S ops", "W-M ops"
    );
    for (name, query) in queries::benchmark_queries() {
        let model = w.model(&query);
        for k in [3usize, 15, 75] {
            let s = w.run(&query, &model, &Algorithm::WhirlpoolS, &default_options(k));
            let m = w.run(
                &query,
                &model,
                &Algorithm::WhirlpoolM { processors: None },
                &default_options(k),
            );
            println!(
                "{:<6} {:>5} {:>20.1} {:>20.1} {:>14} {:>14}",
                name,
                k,
                s.elapsed.as_secs_f64() * 1e3,
                m.elapsed.as_secs_f64() * 1e3,
                s.metrics.server_ops,
                m.metrics.server_ops
            );
        }
    }
}

// -------------------------------------------------------------------
// Figure 11 — varying document size.
// -------------------------------------------------------------------
fn fig11(cache: &mut WorkloadCache, scale: &Scale) {
    banner("Figure 11 — Query execution time vs document size (k=15)");
    println!(
        "{:<6} {:>6} {:>20} {:>20} {:>14}",
        "query", "doc", "Whirlpool-S (ms)", "Whirlpool-M (ms)", "W-S ops"
    );
    for (bytes, label) in scale.labels() {
        // Generate (or fetch) the workload first so the borrow ends
        // before the inner loop uses it immutably.
        let w = cache.bytes(bytes, label);
        for (name, query) in queries::benchmark_queries() {
            let model = w.model(&query);
            let s = w.run(&query, &model, &Algorithm::WhirlpoolS, &default_options(15));
            let m = w.run(
                &query,
                &model,
                &Algorithm::WhirlpoolM { processors: None },
                &default_options(15),
            );
            println!(
                "{:<6} {:>6} {:>20.1} {:>20.1} {:>14}",
                name,
                label,
                s.elapsed.as_secs_f64() * 1e3,
                m.elapsed.as_secs_f64() * 1e3,
                s.metrics.server_ops
            );
        }
    }
}

// -------------------------------------------------------------------
// Table 2 — scalability: partial matches created by Whirlpool-M as a
// percentage of the maximum possible (LockStep-NoPrun).
// -------------------------------------------------------------------
fn table2(cache: &mut WorkloadCache, scale: &Scale) {
    banner(
        "Table 2 — Partial matches created by Whirlpool-M as % of the \
         maximum possible (k=15)",
    );
    let queries_list: Vec<(&str, TreePattern)> = queries::benchmark_queries();
    print!("{:<10}", "doc size");
    for (name, _) in &queries_list {
        print!("{name:>10}");
    }
    println!();
    for (bytes, label) in scale.labels() {
        let w = cache.bytes(bytes, label);
        print!("{label:<10}");
        for (_, query) in &queries_list {
            let model = w.model(query);
            let maximum = w
                .run(
                    query,
                    &model,
                    &Algorithm::LockStepNoPrune,
                    &default_options(15),
                )
                .metrics
                .partials_created;
            let created = w
                .run(
                    query,
                    &model,
                    &Algorithm::WhirlpoolM { processors: None },
                    &default_options(15),
                )
                .metrics
                .partials_created;
            print!("{:>9.2}%", 100.0 * created as f64 / maximum as f64);
        }
        println!();
    }
}
