//! Trace aggregation: derived series for the paper figures.
//!
//! [`whirlpool_core::trace`] records what happened; this module turns a
//! recorded [`TraceData`] into the shapes the paper's figures plot —
//! per-server latency histograms (Figure 8's cost axis), a
//! score-progress curve (threshold vs. work, §6.3.5), and per-phase
//! wall time. Everything here is post-processing over the public event
//! stream; no engine internals are touched.

use std::collections::BTreeMap;
use whirlpool_core::trace::{TraceData, TraceEventKind};
use whirlpool_pattern::QNodeId;

/// Number of log2 buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` µs, except bucket 0 which also holds sub-µs ops.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A power-of-two latency histogram over microsecond durations.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts operations with latency in
    /// `[2^i, 2^(i+1))` µs (bucket 0 includes 0 µs).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total operations recorded.
    pub count: u64,
    /// Sum of all latencies, µs.
    pub total_us: u64,
    /// Largest single latency, µs.
    pub max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one operation latency.
    pub fn record(&mut self, us: u64) {
        let idx = if us <= 1 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound (µs) of the first bucket
    /// at which the cumulative count reaches `q * count`. Returns 0
    /// when empty. `q` is clamped to `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return 1u64 << (i + 1);
            }
        }
        self.max_us
    }
}

/// One point on the score-progress curve: the pruning threshold after
/// `ops` server operations (`ts_us` µs into the run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressPoint {
    /// Server operations completed system-wide when sampled.
    pub ops: u64,
    /// Microseconds since the tracer started.
    pub ts_us: u64,
    /// The k-th best score at that moment (0 until the set fills).
    pub threshold: f64,
}

/// Total time a named phase (span) was open, summed over workers.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Span name as the engine emitted it (e.g. `"seed"`, `"serve"`).
    pub name: String,
    /// Accumulated open time across all matched begin/end pairs, µs.
    pub total_us: u64,
    /// Matched begin/end pairs.
    pub count: u64,
}

/// Everything the aggregator derives from one trace.
#[derive(Debug, Clone, Default)]
pub struct TraceAggregate {
    /// Latency histogram per server, keyed by query node.
    pub per_server: BTreeMap<QNodeId, LatencyHistogram>,
    /// All server operations combined.
    pub overall: LatencyHistogram,
    /// Threshold-vs-work curve, in event order.
    pub progress: Vec<ProgressPoint>,
    /// Per-phase wall time, sorted by name.
    pub phases: Vec<PhaseStat>,
}

impl TraceAggregate {
    /// Builds the aggregate from a recorded trace.
    pub fn from_trace(trace: &TraceData) -> Self {
        let mut agg = TraceAggregate::default();
        let mut ops = 0u64;
        // Per-(worker, span-name) stack of open timestamps. Events are
        // timestamp-sorted with per-worker order preserved, so a plain
        // stack per key pairs begins with ends correctly.
        let mut open: BTreeMap<(u32, &str), Vec<u64>> = BTreeMap::new();
        let mut phases: BTreeMap<&str, PhaseStat> = BTreeMap::new();
        for ev in &trace.events {
            match &ev.kind {
                TraceEventKind::ServerOp { server, dur_us, .. } => {
                    ops += 1;
                    agg.overall.record(*dur_us);
                    agg.per_server.entry(*server).or_default().record(*dur_us);
                }
                TraceEventKind::ThresholdSample { value } => {
                    agg.progress.push(ProgressPoint {
                        ops,
                        ts_us: ev.ts_us,
                        threshold: *value,
                    });
                }
                TraceEventKind::SpanBegin { name } => {
                    open.entry((ev.tid, name)).or_default().push(ev.ts_us);
                }
                TraceEventKind::SpanEnd { name } => {
                    if let Some(begin) = open.get_mut(&(ev.tid, name.as_str())).and_then(Vec::pop) {
                        let stat = phases.entry(name).or_insert_with(|| PhaseStat {
                            name: name.clone(),
                            total_us: 0,
                            count: 0,
                        });
                        stat.total_us += ev.ts_us.saturating_sub(begin);
                        stat.count += 1;
                    }
                }
                _ => {}
            }
        }
        agg.phases = phases.into_values().collect();
        agg
    }

    /// The progress curve thinned to at most `max_points` points (the
    /// last point is always kept, so the final threshold survives).
    pub fn downsampled_progress(&self, max_points: usize) -> Vec<ProgressPoint> {
        let n = self.progress.len();
        if max_points == 0 || n == 0 {
            return Vec::new();
        }
        if n <= max_points {
            return self.progress.clone();
        }
        let mut out = Vec::with_capacity(max_points);
        for i in 0..max_points - 1 {
            out.push(self.progress[i * n / max_points]);
        }
        out.push(self.progress[n - 1]);
        out
    }

    /// Serializes the aggregate as a JSON object (appended to `out`),
    /// with the progress curve capped at `max_points`.
    pub fn push_json(&self, out: &mut String, max_points: usize) {
        out.push_str("{\"progress\": [");
        for (i, p) in self.downsampled_progress(max_points).iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"ops\": {}, \"ts_us\": {}, \"threshold\": {:.6}}}",
                p.ops, p.ts_us, p.threshold
            ));
        }
        out.push_str("], \"servers\": [");
        for (i, (server, h)) in self.per_server.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_histogram_json(out, &format!("q{}", server.0), h);
        }
        out.push_str("], \"overall\": ");
        push_histogram_json(out, "all", &self.overall);
        out.push_str(", \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"total_us\": {}, \"count\": {}}}",
                p.name, p.total_us, p.count
            ));
        }
        out.push_str("]}");
    }
}

fn push_histogram_json(out: &mut String, label: &str, h: &LatencyHistogram) {
    // Trailing empty buckets are elided; consumers index from 2^0.
    let used = HISTOGRAM_BUCKETS - h.buckets.iter().rev().take_while(|&&n| n == 0).count();
    out.push_str(&format!(
        "{{\"server\": \"{label}\", \"ops\": {}, \"mean_us\": {:.3}, \"p99_us\": {}, \
         \"max_us\": {}, \"log2_buckets\": [",
        h.count,
        h.mean_us(),
        h.quantile_us(0.99),
        h.max_us
    ));
    for (i, n) in h.buckets[..used].iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&n.to_string());
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_core::{evaluate, Algorithm, EvalOptions};
    use whirlpool_index::TagIndex;
    use whirlpool_score::{Normalization, TfIdfModel};
    use whirlpool_xmark::{generate, queries, GeneratorConfig};

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        for us in [0, 1, 2, 3, 4, 8, 1000] {
            h.record(us);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.buckets[0], 2); // 0 and 1
        assert_eq!(h.buckets[1], 2); // 2 and 3
        assert_eq!(h.buckets[2], 1); // 4
        assert_eq!(h.buckets[3], 1); // 8
        assert_eq!(h.buckets[9], 1); // 1000 in [512, 1024)
        assert_eq!(h.max_us, 1000);
        assert_eq!(h.quantile_us(0.5), 4); // 4th of 7 falls in bucket 1
        assert_eq!(h.quantile_us(1.0), 1024);
        assert_eq!(LatencyHistogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn aggregates_a_real_trace() {
        if !whirlpool_core::trace::tracing_compiled() {
            return;
        }
        let doc = generate(&GeneratorConfig::items(80));
        let index = TagIndex::build(&doc);
        let query = queries::parse(queries::Q2);
        let model = TfIdfModel::build(&doc, &index, &query, Normalization::Sparse);
        let options = EvalOptions {
            trace: true,
            ..EvalOptions::top_k(10)
        };
        let result = evaluate(
            &doc,
            &index,
            &query,
            &model,
            &Algorithm::WhirlpoolS,
            &options,
        );
        let trace = result.trace.expect("trace requested");
        let agg = TraceAggregate::from_trace(&trace);

        assert_eq!(agg.overall.count, result.metrics.server_ops);
        assert_eq!(
            agg.per_server.values().map(|h| h.count).sum::<u64>(),
            agg.overall.count
        );
        assert!(!agg.progress.is_empty());
        // Thresholds never regress.
        for w in agg.progress.windows(2) {
            assert!(w[1].threshold >= w[0].threshold);
            assert!(w[1].ops >= w[0].ops);
        }
        // Downsampling keeps the endpoints' values.
        let thin = agg.downsampled_progress(16);
        assert!(thin.len() <= 16);
        assert_eq!(thin.last(), agg.progress.last());
        // Spans all closed, so every phase has matched pairs.
        assert!(agg.phases.iter().any(|p| p.name == "seed"));
        for p in &agg.phases {
            assert!(p.count >= 1, "phase {} unmatched", p.name);
        }

        let mut json = String::new();
        agg.push_json(&mut json, 16);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"progress\""));
        assert!(json.contains("\"log2_buckets\""));
    }

    #[test]
    fn downsample_edge_cases() {
        let agg = TraceAggregate::default();
        assert!(agg.downsampled_progress(8).is_empty());
        let one = TraceAggregate {
            progress: vec![ProgressPoint {
                ops: 1,
                ts_us: 5,
                threshold: 0.5,
            }],
            ..TraceAggregate::default()
        };
        assert_eq!(one.downsampled_progress(8).len(), 1);
        assert!(one.downsampled_progress(0).is_empty());
    }
}
