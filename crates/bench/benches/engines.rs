//! Scaled-down engine comparison: one Criterion bench per
//! figure-relevant code path (engines × queries at reduced document
//! size). Full-scale figure reproduction lives in the `repro` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whirlpool_bench::{default_options, Workload};
use whirlpool_core::Algorithm;
use whirlpool_xmark::queries;

fn bench_engines(c: &mut Criterion) {
    let workload = Workload::of_items(150);

    // Figures 6/10/11 code path: each engine, each query.
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    for (qname, query) in queries::benchmark_queries() {
        let model = workload.model(&query);
        for alg in [
            Algorithm::LockStepNoPrune,
            Algorithm::LockStep,
            Algorithm::WhirlpoolS,
            Algorithm::WhirlpoolM { processors: None },
        ] {
            group.bench_with_input(BenchmarkId::new(alg.name(), qname), &query, |b, query| {
                b.iter(|| workload.run(query, &model, &alg, &default_options(15)))
            });
        }
    }
    group.finish();

    // Figure 10 code path: k sweep on the adaptive engine.
    let mut group = c.benchmark_group("k_sweep");
    group.sample_size(10);
    let query = queries::parse(queries::Q2);
    let model = workload.model(&query);
    for k in [3usize, 15, 75] {
        group.bench_with_input(BenchmarkId::new("whirlpool_s", k), &k, |b, &k| {
            b.iter(|| workload.run(&query, &model, &Algorithm::WhirlpoolS, &default_options(k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
