//! Top-k set maintenance under heavy offer traffic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use whirlpool_core::TopKSet;
use whirlpool_score::Score;
use whirlpool_xml::NodeId;

/// SplitMix64 — deterministic pseudo-random scores without extra deps.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn bench_topk(c: &mut Criterion) {
    for k in [15usize, 75] {
        c.bench_function(&format!("topk/offer_stream/k={k}"), |b| {
            b.iter(|| {
                let mut set = TopKSet::new(k);
                for i in 0..10_000u64 {
                    let root = NodeId::from_index((mix(i) % 2_000) as usize);
                    let score = Score::new((mix(i * 7) % 10_000) as f64 / 10_000.0);
                    black_box(set.offer(root, score));
                }
                set.threshold()
            })
        });
    }
    c.bench_function("topk/threshold_query", |b| {
        let mut set = TopKSet::new(15);
        for i in 0..1_000u64 {
            set.offer(NodeId::from_index(i as usize), Score::new(i as f64));
        }
        b.iter(|| black_box(set.threshold()))
    });
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
