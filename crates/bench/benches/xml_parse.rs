//! Parser/serializer throughput on generated XMark-like data.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use whirlpool_store::{read_store, write_store};
use whirlpool_xmark::{generate, GeneratorConfig};
use whirlpool_xml::{parse_document, write_document, WriteOptions};

fn bench_parse(c: &mut Criterion) {
    let doc = generate(&GeneratorConfig::items(500));
    let xml = write_document(&doc, &WriteOptions::default());

    let mut group = c.benchmark_group("xml");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("parse", |b| {
        b.iter(|| parse_document(black_box(&xml)).expect("valid XML"))
    });
    group.bench_function("serialize", |b| {
        b.iter(|| write_document(black_box(&doc), &WriteOptions::default()))
    });
    group.bench_function("generate_500_items", |b| {
        b.iter(|| generate(&GeneratorConfig::items(500)))
    });

    // The binary store's raison d'être: loading beats reparsing.
    let mut store = Vec::new();
    write_store(&doc, &mut store).unwrap();
    group.bench_function("store_load", |b| {
        b.iter(|| read_store(black_box(&mut store.as_slice())).expect("valid store"))
    });
    group.bench_function("store_write", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            write_store(black_box(&doc), &mut out).unwrap();
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
