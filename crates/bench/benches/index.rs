//! Index construction and descendant-range-scan benchmarks.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use whirlpool_index::TagIndex;
use whirlpool_xmark::{generate, GeneratorConfig};

fn bench_index(c: &mut Criterion) {
    let doc = generate(&GeneratorConfig::items(1000));
    let index = TagIndex::build(&doc);
    let item = doc.tag_id("item").unwrap();
    let text = doc.tag_id("text").unwrap();
    let items: Vec<_> = index.nodes_with_tag(item).to_vec();

    c.bench_function("index/build_1000_items", |b| {
        b.iter(|| TagIndex::build(black_box(&doc)))
    });
    c.bench_function("index/descendant_scan", |b| {
        let mut i = 0;
        b.iter(|| {
            let n = items[i % items.len()];
            i += 1;
            black_box(index.descendants_with_tag(n, text).len())
        })
    });
    c.bench_function("index/count_scan", |b| {
        let mut i = 0;
        b.iter(|| {
            let n = items[i % items.len()];
            i += 1;
            black_box(index.count_descendants_with_tag(n, text))
        })
    });
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
