//! Microbenchmarks of the Dewey identifier algebra — the innermost loop
//! of every structural join.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use whirlpool_xml::Dewey;

fn bench_dewey(c: &mut Criterion) {
    let shallow = Dewey::from_components(vec![0, 3]);
    let deep = Dewey::from_components(vec![0, 3, 1, 4, 1, 5, 9, 2]);
    let sibling = Dewey::from_components(vec![0, 4]);

    c.bench_function("dewey/is_ancestor_of/hit", |b| {
        b.iter(|| black_box(&shallow).is_ancestor_of(black_box(&deep)))
    });
    c.bench_function("dewey/is_ancestor_of/miss", |b| {
        b.iter(|| black_box(&sibling).is_ancestor_of(black_box(&deep)))
    });
    c.bench_function("dewey/is_parent_of", |b| {
        b.iter(|| black_box(&shallow).is_parent_of(black_box(&deep)))
    });
    c.bench_function("dewey/is_ancestor_at_depth", |b| {
        b.iter(|| black_box(&shallow).is_ancestor_at_depth(black_box(&deep), 6))
    });
    c.bench_function("dewey/cmp", |b| {
        b.iter(|| black_box(&shallow).cmp(black_box(&deep)))
    });
    c.bench_function("dewey/child", |b| b.iter(|| black_box(&deep).child(7)));
}

criterion_group!(benches, bench_dewey);
criterion_main!(benches);
