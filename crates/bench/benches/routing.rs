//! Ablation: routing strategies (Figure 5 code path) and queue
//! policies (§6.1.3) on a scaled-down workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whirlpool_bench::{default_options, Workload};
use whirlpool_core::{Algorithm, QueuePolicy, RoutingStrategy};
use whirlpool_xmark::queries;

fn bench_routing(c: &mut Criterion) {
    let workload = Workload::of_items(150);
    let query = queries::parse(queries::Q2);
    let model = workload.model(&query);

    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    for routing in [
        RoutingStrategy::MaxScore,
        RoutingStrategy::MinScore,
        RoutingStrategy::MinAlive,
    ] {
        group.bench_with_input(
            BenchmarkId::new("whirlpool_s", routing.name()),
            &routing,
            |b, routing| {
                b.iter(|| {
                    let mut options = default_options(15);
                    options.routing = routing.clone();
                    workload.run(&query, &model, &Algorithm::WhirlpoolS, &options)
                })
            },
        );
    }
    group.finish();

    // Ablation: bulk routing (§6.3.3 future work) — batch sizes trade
    // routing decisions for schedule fidelity.
    let mut group = c.benchmark_group("bulk_routing");
    group.sample_size(10);
    for batch in [1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("whirlpool_s", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut options = default_options(15);
                    options.router_batch = batch;
                    workload.run(&query, &model, &Algorithm::WhirlpoolS, &options)
                })
            },
        );
    }
    group.finish();

    // Ablation: selectivity sample size — the routing estimates' cost
    // vs accuracy knob.
    let mut group = c.benchmark_group("selectivity_sample");
    group.sample_size(10);
    for sample in [4usize, 64, 1024] {
        group.bench_with_input(
            BenchmarkId::new("whirlpool_s", sample),
            &sample,
            |b, &sample| {
                b.iter(|| {
                    let mut options = default_options(15);
                    options.selectivity_sample = sample;
                    workload.run(&query, &model, &Algorithm::WhirlpoolS, &options)
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("queue_policy");
    group.sample_size(10);
    for (name, policy) in [
        ("fifo", QueuePolicy::Fifo),
        ("current_score", QueuePolicy::CurrentScore),
        ("max_next_score", QueuePolicy::MaxNextScore),
        ("max_final_score", QueuePolicy::MaxFinalScore),
    ] {
        group.bench_with_input(
            BenchmarkId::new("whirlpool_s", name),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut options = default_options(15);
                    options.queue = policy;
                    workload.run(&query, &model, &Algorithm::WhirlpoolS, &options)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
