//! Daemon state shared across worker threads.
//!
//! The prepare work happens once, at load time — either a full
//! parse+index, or a zero-copy [`Snapshot`] attach — and every request
//! thereafter borrows an immutable [`DocState`] through an `Arc` and
//! builds only the per-query artifacts (pattern, score model, context).
//! The registry sits behind [`Shared`] — the `Arc<RwLock<_>>` idiom —
//! so reads are concurrent and a future hot-reload endpoint can swap
//! documents without stopping the accept loop.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use std::time::Instant;
use whirlpool_index::{DocView, PathSynopsis, ShardSynopsis, TagIndex, TagIndexView};
use whirlpool_store::{Snapshot, StoreError};
use whirlpool_xml::Document;

/// Clonable handle to state behind a reader-writer lock.
#[derive(Debug, Default)]
pub struct Shared<S>(Arc<RwLock<S>>);

impl<S> Clone for Shared<S> {
    fn clone(&self) -> Self {
        Shared(self.0.clone())
    }
}

impl<S> Shared<S> {
    /// Wraps `state`.
    pub fn new(state: S) -> Shared<S> {
        Shared(Arc::new(RwLock::new(state)))
    }

    /// Shared read access. Poisoning is unreachable by construction —
    /// no writer section can panic — so it is swallowed rather than
    /// propagated: a poisoned registry read would otherwise take the
    /// whole daemon down over an already-handled worker panic.
    pub fn read(&self) -> RwLockReadGuard<'_, S> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Exclusive write access (same poisoning stance as `read`).
    pub fn write(&self) -> RwLockWriteGuard<'_, S> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// How a document became queryable, and what it cost.
///
/// The two variants mirror the CLI's `--stats` line: cold starts pay
/// `index_build_ms` (the parse happened just before, at load), warm
/// starts pay `snapshot_attach_ms` (O(header) validation over a mapped
/// file). `/metrics` surfaces the cost per document so a deployment
/// can see whether its boots are warm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Prepare {
    /// Indexed in-process from a parsed document.
    Indexed {
        /// Wall time of `TagIndex::build` at load.
        ms: f64,
    },
    /// Attached zero-copy from a snapshot file.
    Attached {
        /// Wall time of `Snapshot::attach`.
        ms: f64,
    },
    /// Peeked lazily: only the snapshot's header and synopsis sections
    /// were read at load; the full attach is deferred until the first
    /// query that actually needs the document's arrays.
    Peeked {
        /// Wall time of `Snapshot::peek`.
        ms: f64,
    },
}

impl Prepare {
    /// The `/metrics` field name for this cost.
    pub fn stat_name(&self) -> &'static str {
        match self {
            Prepare::Indexed { .. } => "index_build_ms",
            Prepare::Attached { .. } => "snapshot_attach_ms",
            Prepare::Peeked { .. } => "snapshot_peek_ms",
        }
    }

    /// The cost in milliseconds.
    pub fn ms(&self) -> f64 {
        match self {
            Prepare::Indexed { ms } | Prepare::Attached { ms } | Prepare::Peeked { ms } => *ms,
        }
    }
}

/// A snapshot file known only by its synopsis: the daemon peeked the
/// header at load and attaches the arrays on the first query that
/// needs them. The resident slot is the *only* mutable state — it
/// holds the attached snapshot, `Arc`-shared with every in-flight
/// [`DocAccess`], and the [`Residency`] LRU clears it under memory
/// pressure.
struct LazyDoc {
    path: PathBuf,
    resident: Mutex<Option<Arc<Snapshot>>>,
}

/// What a [`DocState`] holds: a document parsed and indexed at load
/// time, a mapped snapshot whose arrays are read in place, or a lazy
/// snapshot attached on first use.
#[allow(clippy::large_enum_variant)] // one per loaded document
enum DocBacking {
    Parsed { doc: Document, index: TagIndex },
    Snapshot(Box<Snapshot>),
    Lazy(LazyDoc),
}

/// One loaded document: prepared exactly once, then shared immutably
/// by every request that names it.
pub struct DocState {
    /// The lookup name clients use in the `doc` request field.
    pub name: String,
    backing: DocBacking,
    /// Tag-count synopsis for collection-mode shard pruning and the
    /// coarse cost estimate of collection queries.
    pub synopsis: ShardSynopsis,
    /// Stored path synopsis (v3 snapshots, or built at parse time) for
    /// path-aware shard ceilings; `None` for v2 files.
    pub paths: Option<PathSynopsis>,
    /// How this document became queryable and what it cost.
    pub prepare: Prepare,
}

impl DocState {
    /// Indexes `doc` under `name` (the cold-start path).
    pub fn new(name: impl Into<String>, doc: Document) -> DocState {
        let start = Instant::now();
        let index = TagIndex::build(&doc);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let synopsis = ShardSynopsis::build(&doc);
        let paths = Some(PathSynopsis::build(&doc));
        DocState {
            name: name.into(),
            backing: DocBacking::Parsed { doc, index },
            synopsis,
            paths,
            prepare: Prepare::Indexed { ms },
        }
    }

    /// Attaches a snapshot under `name` (the eager warm-start path):
    /// O(header) validation, no parse, no index build.
    pub fn attach(
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<DocState, StoreError> {
        let start = Instant::now();
        let snapshot = Snapshot::attach(path)?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let synopsis = snapshot.synopsis().clone();
        let paths = snapshot.path_synopsis().cloned();
        Ok(DocState {
            name: name.into(),
            backing: DocBacking::Snapshot(Box::new(snapshot)),
            synopsis,
            paths,
            prepare: Prepare::Attached { ms },
        })
    }

    /// Registers a snapshot under `name` *without* attaching it: only
    /// the header and synopsis sections are read. The document's
    /// arrays map in on the first [`Residency::acquire`] that needs
    /// them — a collection query that prunes this document off its
    /// ceiling never pays the attach at all.
    pub fn peek(
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<DocState, StoreError> {
        let start = Instant::now();
        let peek = Snapshot::peek(&path)?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        Ok(DocState {
            name: name.into(),
            backing: DocBacking::Lazy(LazyDoc {
                path: path.as_ref().to_path_buf(),
                resident: Mutex::new(None),
            }),
            synopsis: peek.synopsis,
            paths: peek.paths,
            prepare: Prepare::Peeked { ms },
        })
    }

    /// The document, whichever backing holds it.
    ///
    /// # Panics
    ///
    /// For a lazy (peeked) document — its views live in the attached
    /// snapshot, which only [`Residency::acquire`] can pin.
    pub fn doc(&self) -> DocView<'_> {
        match &self.backing {
            DocBacking::Parsed { doc, .. } => DocView::from(doc),
            DocBacking::Snapshot(s) => s.doc_view(),
            DocBacking::Lazy(_) => {
                panic!("lazy document has no borrowable views; use Residency::acquire")
            }
        }
    }

    /// The tag index, whichever backing holds it (same panic caveat as
    /// [`doc`](Self::doc)).
    pub fn index(&self) -> TagIndexView<'_> {
        match &self.backing {
            DocBacking::Parsed { index, .. } => index.view(),
            DocBacking::Snapshot(s) => s.index_view(),
            DocBacking::Lazy(_) => {
                panic!("lazy document has no borrowable views; use Residency::acquire")
            }
        }
    }

    /// The owned document and index, when this state was parsed rather
    /// than attached — the background snapshotter serializes from here.
    pub fn as_parsed(&self) -> Option<(&Document, &TagIndex)> {
        match &self.backing {
            DocBacking::Parsed { doc, index } => Some((doc, index)),
            DocBacking::Snapshot(_) | DocBacking::Lazy(_) => None,
        }
    }

    /// Is this document snapshot-backed (eagerly attached *or* lazily
    /// peeked)? Either way a boot was warm: no parse, no index build.
    pub fn is_snapshot(&self) -> bool {
        matches!(self.backing, DocBacking::Snapshot(_) | DocBacking::Lazy(_))
    }

    /// Is this a lazily-peeked document?
    pub fn is_lazy(&self) -> bool {
        matches!(self.backing, DocBacking::Lazy(_))
    }

    /// Is a lazy document's snapshot currently attached? `false` for
    /// parsed documents (nothing to attach), `true` for eager
    /// snapshots. Non-blocking: a slot mid-attach on another thread
    /// counts as resident.
    pub fn is_resident(&self) -> bool {
        match &self.backing {
            DocBacking::Parsed { .. } => false,
            DocBacking::Snapshot(_) => true,
            DocBacking::Lazy(lazy) => match lazy.resident.try_lock() {
                Ok(slot) => slot.is_some(),
                Err(TryLockError::Poisoned(p)) => p.into_inner().is_some(),
                Err(TryLockError::WouldBlock) => true,
            },
        }
    }

    /// The `/metrics` backing label.
    pub fn backing_label(&self) -> &'static str {
        match &self.backing {
            DocBacking::Parsed { .. } => "parsed",
            DocBacking::Snapshot(_) => "snapshot",
            DocBacking::Lazy(_) => "lazy",
        }
    }
}

/// Read access to one document's views, whatever its backing.
///
/// For lazy documents the access *pins* the attached snapshot: the
/// `Arc` keeps the mapping alive even if the LRU evicts the document
/// mid-query, so views handed to an engine can never dangle.
pub enum DocAccess<'a> {
    /// The document's arrays live in the `DocState` itself.
    Borrowed(&'a DocState),
    /// The document's arrays live in a pinned lazy snapshot.
    Resident(Arc<Snapshot>),
}

impl DocAccess<'_> {
    /// The document view.
    pub fn doc(&self) -> DocView<'_> {
        match self {
            DocAccess::Borrowed(state) => state.doc(),
            DocAccess::Resident(snapshot) => snapshot.doc_view(),
        }
    }

    /// The tag-index view.
    pub fn index(&self) -> TagIndexView<'_> {
        match self {
            DocAccess::Borrowed(state) => state.index(),
            DocAccess::Resident(snapshot) => snapshot.index_view(),
        }
    }
}

/// Registry-wide residency control for lazy documents: a target cap on
/// attached snapshots, the LRU that enforces it, and the monotone
/// counters `/metrics` reports under `"shards"`.
///
/// Lock order: a document's resident slot is never held while the MRU
/// lock is taken ([`acquire`](Self::acquire) releases it first), and
/// the eviction scan only `try_lock`s slots — a slot busy attaching on
/// another thread is simply skipped as a victim.
#[derive(Default)]
pub struct Residency {
    /// Target cap on attached lazy snapshots; 0 means unlimited.
    max_resident: AtomicUsize,
    /// Most-recently-used last; holds only lazy documents.
    mru: Mutex<Vec<Arc<DocState>>>,
    /// Snapshot attaches performed (first touch or re-attach after
    /// eviction).
    pub attached: AtomicU64,
    /// Documents registered by peek (header-only load).
    pub peeked: AtomicU64,
    /// Collection-query prunes that hit a lazy document while it was
    /// not resident — the disk I/O the synopsis ceiling saved.
    pub pruned_before_attach: AtomicU64,
    /// Resident snapshots detached by the LRU.
    pub evictions: AtomicU64,
}

impl Residency {
    /// Sets the residency target (0 = unlimited). A *target*, not a
    /// hard cap: snapshots pinned by in-flight queries are not
    /// evictable, so the resident count can transiently exceed it.
    pub fn set_max_resident(&self, max: usize) {
        self.max_resident.store(max, Ordering::Relaxed);
    }

    /// The configured residency target (0 = unlimited).
    pub fn max_resident(&self) -> usize {
        self.max_resident.load(Ordering::Relaxed)
    }

    /// Pins `state`'s views for reading, attaching its snapshot first
    /// if the document is lazy and not resident. Attaching marks the
    /// document most-recently-used and may evict the coldest
    /// unpinned resident document beyond the target.
    pub fn acquire<'a>(&self, state: &'a Arc<DocState>) -> Result<DocAccess<'a>, StoreError> {
        let DocBacking::Lazy(lazy) = &state.backing else {
            return Ok(DocAccess::Borrowed(state));
        };
        let snapshot = {
            let mut slot = lazy.resident.lock().unwrap_or_else(|p| p.into_inner());
            match slot.as_ref() {
                Some(s) => s.clone(),
                None => {
                    let s = Arc::new(Snapshot::attach(&lazy.path)?);
                    self.attached.fetch_add(1, Ordering::Relaxed);
                    *slot = Some(s.clone());
                    s
                }
            }
        };
        // Slot lock released above — see the lock-order note on the
        // type.
        self.touch(state);
        Ok(DocAccess::Resident(snapshot))
    }

    /// Marks `state` most-recently-used and evicts LRU-first down to
    /// the target. Victims must be detachable right now: slot free
    /// (`try_lock`) and snapshot unpinned (`Arc` count 1).
    fn touch(&self, state: &Arc<DocState>) {
        let mut mru = self.mru.lock().unwrap_or_else(|p| p.into_inner());
        mru.retain(|d| !Arc::ptr_eq(d, state) && d.is_resident());
        mru.push(state.clone());
        let max = self.max_resident.load(Ordering::Relaxed);
        if max == 0 {
            return;
        }
        let mut resident = mru.iter().filter(|d| d.is_resident()).count();
        let mut victim = 0;
        while resident > max && victim + 1 < mru.len() {
            let DocBacking::Lazy(lazy) = &mru[victim].backing else {
                victim += 1;
                continue;
            };
            let mut slot = match lazy.resident.try_lock() {
                Ok(slot) => slot,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    victim += 1;
                    continue;
                }
            };
            if let Some(s) = slot.as_ref() {
                if Arc::strong_count(s) == 1 {
                    *slot = None;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    resident -= 1;
                }
            }
            victim += 1;
        }
    }

    /// Currently attached lazy documents (tracked ones only).
    pub fn resident_count(&self) -> usize {
        self.mru
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .filter(|d| d.is_resident())
            .count()
    }

    /// The `/metrics` `"shards"` object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"attached\": {}, \"peeked\": {}, \"pruned_before_attach\": {}, \
             \"evictions\": {}, \"resident\": {}}}",
            self.attached.load(Ordering::Relaxed),
            self.peeked.load(Ordering::Relaxed),
            self.pruned_before_attach.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.resident_count(),
        )
    }
}

/// The set of loaded documents, by name.
#[derive(Default)]
pub struct Registry {
    docs: HashMap<String, Arc<DocState>>,
    residency: Arc<Residency>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds (or replaces) a document.
    pub fn insert(&mut self, state: DocState) {
        if matches!(state.prepare, Prepare::Peeked { .. }) {
            self.residency.peeked.fetch_add(1, Ordering::Relaxed);
        }
        self.docs.insert(state.name.clone(), Arc::new(state));
    }

    /// The residency controller shared by every lazy document in this
    /// registry (clone the `Arc` out before moving the registry behind
    /// [`Shared`]).
    pub fn residency(&self) -> Arc<Residency> {
        self.residency.clone()
    }

    /// Looks a document up by name. An empty name resolves iff exactly
    /// one document is loaded — the common single-document deployment
    /// doesn't force clients to repeat the name.
    pub fn get(&self, name: &str) -> Option<Arc<DocState>> {
        if name.is_empty() && self.docs.len() == 1 {
            return self.docs.values().next().cloned();
        }
        self.docs.get(name).cloned()
    }

    /// Every loaded document, sorted by name — the deterministic shard
    /// order of collection-mode queries.
    pub fn all(&self) -> Vec<Arc<DocState>> {
        let mut docs: Vec<Arc<DocState>> = self.docs.values().cloned().collect();
        docs.sort_by(|a, b| a.name.cmp(&b.name));
        docs
    }

    /// Number of loaded documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::parse_document;

    fn doc_state(name: &str) -> DocState {
        DocState::new(name, parse_document("<r><a/><b/></r>").unwrap())
    }

    #[test]
    fn single_document_answers_the_empty_name() {
        let mut r = Registry::new();
        r.insert(doc_state("only"));
        assert_eq!(r.get("").unwrap().name, "only");
        assert_eq!(r.get("only").unwrap().name, "only");
        assert!(r.get("other").is_none());

        r.insert(doc_state("second"));
        assert!(
            r.get("").is_none(),
            "ambiguous empty name must not guess between two documents"
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn shared_reads_are_concurrent_and_writes_exclusive() {
        let shared = Shared::new(Registry::new());
        shared.write().insert(doc_state("d"));
        let a = shared.read();
        let b = shared.read();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn attached_state_serves_the_same_views_as_a_parsed_one() {
        let xml = "<shelf><book id=\"b1\"><title>dune</title></book><book/></shelf>";
        let parsed = DocState::new("s", parse_document(xml).unwrap());
        assert!(!parsed.is_snapshot());
        assert!(parsed.as_parsed().is_some());
        assert_eq!(parsed.prepare.stat_name(), "index_build_ms");

        let dir = std::env::temp_dir().join(format!("wp-shared-attach-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.wps");
        let (doc, index) = parsed.as_parsed().unwrap();
        whirlpool_store::save_snapshot(doc, index, &path).unwrap();

        let attached = DocState::attach("s", &path).unwrap();
        assert!(attached.is_snapshot());
        assert!(attached.as_parsed().is_none());
        assert_eq!(attached.prepare.stat_name(), "snapshot_attach_ms");
        assert_eq!(attached.doc().len(), parsed.doc().len());
        assert_eq!(
            attached.synopsis.tag_count("book"),
            parsed.synopsis.tag_count("book")
        );
        let tag = attached.doc().tag_id("title").unwrap();
        assert_eq!(
            attached.index().nodes_with_tag(tag).len(),
            parsed
                .index()
                .nodes_with_tag(parsed.doc().tag_id("title").unwrap())
                .len()
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn peeked_state_attaches_on_first_acquire_and_evicts_on_pressure() {
        let dir = std::env::temp_dir().join(format!("wp-shared-peek-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut registry = Registry::new();
        for name in ["a", "b"] {
            let doc = parse_document("<shelf><book><title>x</title></book></shelf>").unwrap();
            let index = whirlpool_index::TagIndex::build(&doc);
            let path = dir.join(format!("{name}.wps"));
            whirlpool_store::save_snapshot(&doc, &index, &path).unwrap();
            registry.insert(DocState::peek(name, &path).unwrap());
        }
        let residency = registry.residency();
        residency.set_max_resident(1);
        assert_eq!(residency.peeked.load(Ordering::Relaxed), 2);

        let a = registry.get("a").unwrap();
        let b = registry.get("b").unwrap();
        assert!(a.is_lazy() && a.is_snapshot() && !a.is_resident());
        assert_eq!(a.prepare.stat_name(), "snapshot_peek_ms");
        assert!(a.paths.is_some(), "v3 snapshot carries its path synopsis");
        assert_eq!(a.synopsis.tag_count("book"), 1);

        // First acquire attaches; the access pins the snapshot.
        let access = residency.acquire(&a).unwrap();
        assert_eq!(access.doc().len(), a.synopsis.elements() as usize + 1);
        assert!(a.is_resident());
        assert_eq!(residency.attached.load(Ordering::Relaxed), 1);

        // While `a` is pinned, touching `b` cannot evict it.
        let access_b = residency.acquire(&b).unwrap();
        assert!(a.is_resident(), "pinned snapshots are not evictable");
        drop(access);
        drop(access_b);

        // Unpinned now: the next acquire of `a` evicts `b` (LRU).
        let _again = residency.acquire(&a).unwrap();
        assert!(!b.is_resident(), "LRU victim must be detached");
        assert!(residency.evictions.load(Ordering::Relaxed) >= 1);
        assert!(residency.resident_count() <= 1);
        crate::json::Json::parse(&residency.to_json()).expect("valid shards json");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
