//! Daemon state shared across worker threads.
//!
//! The prepare work happens once, at load time — either a full
//! parse+index, or a zero-copy [`Snapshot`] attach — and every request
//! thereafter borrows an immutable [`DocState`] through an `Arc` and
//! builds only the per-query artifacts (pattern, score model, context).
//! The registry sits behind [`Shared`] — the `Arc<RwLock<_>>` idiom —
//! so reads are concurrent and a future hot-reload endpoint can swap
//! documents without stopping the accept loop.

use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;
use whirlpool_index::{DocView, ShardSynopsis, TagIndex, TagIndexView};
use whirlpool_store::Snapshot;
use whirlpool_xml::Document;

/// Clonable handle to state behind a reader-writer lock.
#[derive(Debug, Default)]
pub struct Shared<S>(Arc<RwLock<S>>);

impl<S> Clone for Shared<S> {
    fn clone(&self) -> Self {
        Shared(self.0.clone())
    }
}

impl<S> Shared<S> {
    /// Wraps `state`.
    pub fn new(state: S) -> Shared<S> {
        Shared(Arc::new(RwLock::new(state)))
    }

    /// Shared read access. Poisoning is unreachable by construction —
    /// no writer section can panic — so it is swallowed rather than
    /// propagated: a poisoned registry read would otherwise take the
    /// whole daemon down over an already-handled worker panic.
    pub fn read(&self) -> RwLockReadGuard<'_, S> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Exclusive write access (same poisoning stance as `read`).
    pub fn write(&self) -> RwLockWriteGuard<'_, S> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// How a document became queryable, and what it cost.
///
/// The two variants mirror the CLI's `--stats` line: cold starts pay
/// `index_build_ms` (the parse happened just before, at load), warm
/// starts pay `snapshot_attach_ms` (O(header) validation over a mapped
/// file). `/metrics` surfaces the cost per document so a deployment
/// can see whether its boots are warm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Prepare {
    /// Indexed in-process from a parsed document.
    Indexed {
        /// Wall time of `TagIndex::build` at load.
        ms: f64,
    },
    /// Attached zero-copy from a version-2 snapshot.
    Attached {
        /// Wall time of `Snapshot::attach`.
        ms: f64,
    },
}

impl Prepare {
    /// The `/metrics` field name for this cost.
    pub fn stat_name(&self) -> &'static str {
        match self {
            Prepare::Indexed { .. } => "index_build_ms",
            Prepare::Attached { .. } => "snapshot_attach_ms",
        }
    }

    /// The cost in milliseconds.
    pub fn ms(&self) -> f64 {
        match self {
            Prepare::Indexed { ms } | Prepare::Attached { ms } => *ms,
        }
    }
}

/// What a [`DocState`] holds: a document parsed and indexed at load
/// time, or a mapped snapshot whose arrays are read in place.
#[allow(clippy::large_enum_variant)] // one per loaded document
enum DocBacking {
    Parsed { doc: Document, index: TagIndex },
    Snapshot(Box<Snapshot>),
}

/// One loaded document: prepared exactly once, then shared immutably
/// by every request that names it.
pub struct DocState {
    /// The lookup name clients use in the `doc` request field.
    pub name: String,
    backing: DocBacking,
    /// Tag-count synopsis for collection-mode shard pruning and the
    /// coarse cost estimate of collection queries.
    pub synopsis: ShardSynopsis,
    /// How this document became queryable and what it cost.
    pub prepare: Prepare,
}

impl DocState {
    /// Indexes `doc` under `name` (the cold-start path).
    pub fn new(name: impl Into<String>, doc: Document) -> DocState {
        let start = Instant::now();
        let index = TagIndex::build(&doc);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let synopsis = ShardSynopsis::build(&doc);
        DocState {
            name: name.into(),
            backing: DocBacking::Parsed { doc, index },
            synopsis,
            prepare: Prepare::Indexed { ms },
        }
    }

    /// Attaches a version-2 snapshot under `name` (the warm-start
    /// path): O(header) validation, no parse, no index build.
    pub fn attach(
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<DocState, whirlpool_store::StoreError> {
        let start = Instant::now();
        let snapshot = Snapshot::attach(path)?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let synopsis = snapshot.synopsis().clone();
        Ok(DocState {
            name: name.into(),
            backing: DocBacking::Snapshot(Box::new(snapshot)),
            synopsis,
            prepare: Prepare::Attached { ms },
        })
    }

    /// The document, whichever backing holds it.
    pub fn doc(&self) -> DocView<'_> {
        match &self.backing {
            DocBacking::Parsed { doc, .. } => DocView::from(doc),
            DocBacking::Snapshot(s) => s.doc_view(),
        }
    }

    /// The tag index, whichever backing holds it.
    pub fn index(&self) -> TagIndexView<'_> {
        match &self.backing {
            DocBacking::Parsed { index, .. } => index.view(),
            DocBacking::Snapshot(s) => s.index_view(),
        }
    }

    /// The owned document and index, when this state was parsed rather
    /// than attached — the background snapshotter serializes from here.
    pub fn as_parsed(&self) -> Option<(&Document, &TagIndex)> {
        match &self.backing {
            DocBacking::Parsed { doc, index } => Some((doc, index)),
            DocBacking::Snapshot(_) => None,
        }
    }

    /// Is this document backed by an attached snapshot?
    pub fn is_snapshot(&self) -> bool {
        matches!(self.backing, DocBacking::Snapshot(_))
    }
}

/// The set of loaded documents, by name.
#[derive(Default)]
pub struct Registry {
    docs: HashMap<String, Arc<DocState>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds (or replaces) a document.
    pub fn insert(&mut self, state: DocState) {
        self.docs.insert(state.name.clone(), Arc::new(state));
    }

    /// Looks a document up by name. An empty name resolves iff exactly
    /// one document is loaded — the common single-document deployment
    /// doesn't force clients to repeat the name.
    pub fn get(&self, name: &str) -> Option<Arc<DocState>> {
        if name.is_empty() && self.docs.len() == 1 {
            return self.docs.values().next().cloned();
        }
        self.docs.get(name).cloned()
    }

    /// Every loaded document, sorted by name — the deterministic shard
    /// order of collection-mode queries.
    pub fn all(&self) -> Vec<Arc<DocState>> {
        let mut docs: Vec<Arc<DocState>> = self.docs.values().cloned().collect();
        docs.sort_by(|a, b| a.name.cmp(&b.name));
        docs
    }

    /// Number of loaded documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::parse_document;

    fn doc_state(name: &str) -> DocState {
        DocState::new(name, parse_document("<r><a/><b/></r>").unwrap())
    }

    #[test]
    fn single_document_answers_the_empty_name() {
        let mut r = Registry::new();
        r.insert(doc_state("only"));
        assert_eq!(r.get("").unwrap().name, "only");
        assert_eq!(r.get("only").unwrap().name, "only");
        assert!(r.get("other").is_none());

        r.insert(doc_state("second"));
        assert!(
            r.get("").is_none(),
            "ambiguous empty name must not guess between two documents"
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn shared_reads_are_concurrent_and_writes_exclusive() {
        let shared = Shared::new(Registry::new());
        shared.write().insert(doc_state("d"));
        let a = shared.read();
        let b = shared.read();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn attached_state_serves_the_same_views_as_a_parsed_one() {
        let xml = "<shelf><book id=\"b1\"><title>dune</title></book><book/></shelf>";
        let parsed = DocState::new("s", parse_document(xml).unwrap());
        assert!(!parsed.is_snapshot());
        assert!(parsed.as_parsed().is_some());
        assert_eq!(parsed.prepare.stat_name(), "index_build_ms");

        let dir = std::env::temp_dir().join(format!("wp-shared-attach-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.wps");
        let (doc, index) = parsed.as_parsed().unwrap();
        whirlpool_store::save_snapshot(doc, index, &path).unwrap();

        let attached = DocState::attach("s", &path).unwrap();
        assert!(attached.is_snapshot());
        assert!(attached.as_parsed().is_none());
        assert_eq!(attached.prepare.stat_name(), "snapshot_attach_ms");
        assert_eq!(attached.doc().len(), parsed.doc().len());
        assert_eq!(
            attached.synopsis.tag_count("book"),
            parsed.synopsis.tag_count("book")
        );
        let tag = attached.doc().tag_id("title").unwrap();
        assert_eq!(
            attached.index().nodes_with_tag(tag).len(),
            parsed
                .index()
                .nodes_with_tag(parsed.doc().tag_id("title").unwrap())
                .len()
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
