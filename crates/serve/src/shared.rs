//! Daemon state shared across worker threads.
//!
//! The parse/index work happens once, at load time; every request
//! thereafter borrows an immutable [`DocState`] through an `Arc` and
//! builds only the per-query artifacts (pattern, score model, context).
//! The registry sits behind [`Shared`] — the `Arc<RwLock<_>>` idiom —
//! so reads are concurrent and a future hot-reload endpoint can swap
//! documents without stopping the accept loop.

use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use whirlpool_index::{ShardSynopsis, TagIndex};
use whirlpool_xml::Document;

/// Clonable handle to state behind a reader-writer lock.
#[derive(Debug, Default)]
pub struct Shared<S>(Arc<RwLock<S>>);

impl<S> Clone for Shared<S> {
    fn clone(&self) -> Self {
        Shared(self.0.clone())
    }
}

impl<S> Shared<S> {
    /// Wraps `state`.
    pub fn new(state: S) -> Shared<S> {
        Shared(Arc::new(RwLock::new(state)))
    }

    /// Shared read access. Poisoning is unreachable by construction —
    /// no writer section can panic — so it is swallowed rather than
    /// propagated: a poisoned registry read would otherwise take the
    /// whole daemon down over an already-handled worker panic.
    pub fn read(&self) -> RwLockReadGuard<'_, S> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Exclusive write access (same poisoning stance as `read`).
    pub fn write(&self) -> RwLockWriteGuard<'_, S> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// One loaded document: parsed and indexed exactly once, then shared
/// immutably by every request that names it.
pub struct DocState {
    /// The lookup name clients use in the `doc` request field.
    pub name: String,
    /// The parsed document.
    pub doc: Document,
    /// The tag index built over it.
    pub index: TagIndex,
    /// Tag-count synopsis for collection-mode shard pruning and the
    /// coarse cost estimate of collection queries.
    pub synopsis: ShardSynopsis,
}

impl DocState {
    /// Indexes `doc` under `name`.
    pub fn new(name: impl Into<String>, doc: Document) -> DocState {
        let index = TagIndex::build(&doc);
        let synopsis = ShardSynopsis::build(&doc);
        DocState {
            name: name.into(),
            doc,
            index,
            synopsis,
        }
    }
}

/// The set of loaded documents, by name.
#[derive(Default)]
pub struct Registry {
    docs: HashMap<String, Arc<DocState>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds (or replaces) a document.
    pub fn insert(&mut self, state: DocState) {
        self.docs.insert(state.name.clone(), Arc::new(state));
    }

    /// Looks a document up by name. An empty name resolves iff exactly
    /// one document is loaded — the common single-document deployment
    /// doesn't force clients to repeat the name.
    pub fn get(&self, name: &str) -> Option<Arc<DocState>> {
        if name.is_empty() && self.docs.len() == 1 {
            return self.docs.values().next().cloned();
        }
        self.docs.get(name).cloned()
    }

    /// Every loaded document, sorted by name — the deterministic shard
    /// order of collection-mode queries.
    pub fn all(&self) -> Vec<Arc<DocState>> {
        let mut docs: Vec<Arc<DocState>> = self.docs.values().cloned().collect();
        docs.sort_by(|a, b| a.name.cmp(&b.name));
        docs
    }

    /// Number of loaded documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whirlpool_xml::parse_document;

    fn doc_state(name: &str) -> DocState {
        DocState::new(name, parse_document("<r><a/><b/></r>").unwrap())
    }

    #[test]
    fn single_document_answers_the_empty_name() {
        let mut r = Registry::new();
        r.insert(doc_state("only"));
        assert_eq!(r.get("").unwrap().name, "only");
        assert_eq!(r.get("only").unwrap().name, "only");
        assert!(r.get("other").is_none());

        r.insert(doc_state("second"));
        assert!(
            r.get("").is_none(),
            "ambiguous empty name must not guess between two documents"
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn shared_reads_are_concurrent_and_writes_exclusive() {
        let shared = Shared::new(Registry::new());
        shared.write().insert(doc_state("d"));
        let a = shared.read();
        let b = shared.read();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
