//! The robustness governor: admission control, the degradation
//! ladder, and the per-request watchdog.
//!
//! The three mechanisms compose into one overload story:
//!
//! 1. **Admission** decides *whether* a query runs: a token bucket caps
//!    concurrency, and the selectivity-based cost estimate
//!    ([`QueryContext::cost_estimate`]) turns away queries whose
//!    predicted work would not fit the capacity remaining at the
//!    current pressure. An idle daemon always admits — a too-expensive
//!    estimate must never deny service that could simply run alone.
//! 2. **The ladder** decides *how* an admitted query runs: rising
//!    pressure shrinks the deadline and adds an op budget, sliding
//!    answers from exact through certified-truncated rather than
//!    queueing them into a timeout collapse.
//! 3. **The watchdog** decides when a running query must *stop*: a
//!    hard deadline past the ladder's own, or a client disconnect,
//!    trips the engine's [`CancelToken`] so the worker thread is
//!    reclaimed within an interrupt span instead of finishing work
//!    nobody will read.
//!
//! [`QueryContext::cost_estimate`]: whirlpool_core::QueryContext::cost_estimate

use crate::error::RejectReason;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use whirlpool_core::CancelToken;

// ---------------------------------------------------------------------
// Admission.

/// Token-bucket admission with a cost gate.
#[derive(Debug)]
pub struct Admission {
    max_inflight: usize,
    capacity_ops: f64,
    inflight: Arc<AtomicUsize>,
}

impl Admission {
    /// `max_inflight` concurrency tokens; `capacity_ops` is the server-
    /// operation spend the daemon considers affordable at zero load.
    pub fn new(max_inflight: usize, capacity_ops: f64) -> Admission {
        Admission {
            max_inflight: max_inflight.max(1),
            capacity_ops: capacity_ops.max(1.0),
            inflight: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Requests currently holding a token.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Load as a fraction of the token bucket, in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        (self.inflight() as f64 / self.max_inflight as f64).min(1.0)
    }

    /// Admits or rejects a query whose cost estimate is
    /// `estimated_ops`. On admission the returned [`Permit`] holds one
    /// concurrency token until dropped.
    pub fn try_admit(&self, estimated_ops: f64) -> Result<Permit, RejectReason> {
        // Reserve the token optimistically; every early return below
        // must release it.
        let prior = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prior >= self.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return Err(RejectReason::Busy {
                inflight: prior,
                max_inflight: self.max_inflight,
            });
        }
        // The cost gate scales with the *remaining* headroom: a daemon
        // at half pressure only accepts queries fitting half the
        // capacity. `prior == 0` (idle) bypasses the gate entirely.
        let remaining = self.capacity_ops * (1.0 - prior as f64 / self.max_inflight as f64);
        if prior > 0 && estimated_ops > remaining {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return Err(RejectReason::TooExpensive {
                estimated_ops,
                capacity: remaining,
            });
        }
        Ok(Permit {
            inflight: self.inflight.clone(),
        })
    }
}

/// One held concurrency token; dropping it releases the slot.
#[derive(Debug)]
pub struct Permit {
    inflight: Arc<AtomicUsize>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------
// The degradation ladder.

/// The rung an admitted query runs on, chosen from pressure at
/// admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Low pressure: full deadline, no op budget — exact answers.
    Full,
    /// Medium pressure: half deadline plus an op budget; most answers
    /// stay exact, expensive ones come back certified-truncated.
    Tightened,
    /// High pressure: quarter deadline and a small op budget; answers
    /// are anytime prefixes with a score-bound certificate, but every
    /// admitted client still gets one.
    Truncating,
}

impl Rung {
    /// Picks the rung for a given pressure.
    pub fn for_pressure(pressure: f64) -> Rung {
        if pressure < 0.5 {
            Rung::Full
        } else if pressure < 0.85 {
            Rung::Tightened
        } else {
            Rung::Truncating
        }
    }

    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            Rung::Full => "full",
            Rung::Tightened => "tightened",
            Rung::Truncating => "truncating",
        }
    }

    /// The `(deadline, op budget)` this rung grants, from the
    /// configured full-service deadline and capacity.
    pub fn budgets(&self, base_deadline: Duration, capacity_ops: f64) -> (Duration, Option<u64>) {
        match self {
            Rung::Full => (base_deadline, None),
            Rung::Tightened => (base_deadline / 2, Some(capacity_ops.max(1.0) as u64)),
            Rung::Truncating => (
                base_deadline / 4,
                Some((capacity_ops / 4.0).max(1.0) as u64),
            ),
        }
    }
}

// ---------------------------------------------------------------------
// The watchdog.

/// Why the watchdog tripped a request's cancel token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FireCause {
    /// The hard deadline passed.
    Deadline,
    /// The client hung up while the query was still running.
    Disconnect,
}

struct WatchEntry {
    id: u64,
    cancel: CancelToken,
    hard_deadline: Instant,
    /// A cloned handle on the client connection, switched to
    /// non-blocking: `peek() == Ok(0)` means the client hung up.
    probe: TcpStream,
    fired: Arc<Mutex<Option<FireCause>>>,
}

/// Monitors in-flight requests and trips their [`CancelToken`]s on
/// hard-deadline overrun or client disconnect. One polling thread for
/// the whole daemon — entries are only ever a handful (bounded by the
/// admission bucket), so a scan every few milliseconds is cheap.
pub struct Watchdog {
    entries: Arc<Mutex<Vec<WatchEntry>>>,
    shutdown: Arc<AtomicBool>,
    next_id: AtomicUsize,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Watchdog {
    /// Starts the polling thread.
    pub fn start() -> Arc<Watchdog> {
        let dog = Arc::new(Watchdog {
            entries: Arc::new(Mutex::new(Vec::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
            next_id: AtomicUsize::new(0),
            thread: Mutex::new(None),
        });
        let entries = dog.entries.clone();
        let shutdown = dog.shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("serve-watchdog".into())
            .spawn(move || {
                let mut scratch = [0u8; 1];
                while !shutdown.load(Ordering::Acquire) {
                    {
                        let mut entries = entries.lock().unwrap_or_else(|p| p.into_inner());
                        let now = Instant::now();
                        for e in entries.iter_mut() {
                            if e.cancel.is_cancelled() {
                                continue;
                            }
                            let cause = if now >= e.hard_deadline {
                                Some(FireCause::Deadline)
                            } else {
                                match e.probe.peek(&mut scratch) {
                                    // EOF: the client is gone.
                                    Ok(0) => Some(FireCause::Disconnect),
                                    // Pending request bytes: still there.
                                    Ok(_) => None,
                                    Err(ref err)
                                        if err.kind() == std::io::ErrorKind::WouldBlock =>
                                    {
                                        None
                                    }
                                    // Reset/aborted: also gone.
                                    Err(_) => Some(FireCause::Disconnect),
                                }
                            };
                            if let Some(cause) = cause {
                                e.cancel.cancel();
                                *e.fired.lock().unwrap_or_else(|p| p.into_inner()) = Some(cause);
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
            .expect("spawn watchdog thread");
        *dog.thread.lock().unwrap_or_else(|p| p.into_inner()) = Some(handle);
        dog
    }

    /// Registers a request. The returned guard deregisters on drop;
    /// query it afterwards for whether (and why) the watchdog fired.
    ///
    /// Caveat: the probe is a [`TcpStream::try_clone`], which shares
    /// the underlying file description — switching it non-blocking
    /// switches `conn` too. Callers must do no socket I/O while the
    /// guard lives and call `conn.set_nonblocking(false)` after
    /// dropping it, before writing the response.
    pub fn watch(
        self: &Arc<Watchdog>,
        cancel: CancelToken,
        hard_deadline: Instant,
        conn: &TcpStream,
    ) -> std::io::Result<WatchGuard> {
        let probe = conn.try_clone()?;
        probe.set_nonblocking(true)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) as u64;
        let fired = Arc::new(Mutex::new(None));
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(WatchEntry {
                id,
                cancel,
                hard_deadline,
                probe,
                fired: fired.clone(),
            });
        Ok(WatchGuard {
            dog: self.clone(),
            id,
            fired,
        })
    }

    /// Number of requests currently watched.
    pub fn watched(&self) -> usize {
        self.entries.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Stops the polling thread (idempotent).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.thread.lock().unwrap_or_else(|p| p.into_inner()).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Deregisters its request from the [`Watchdog`] on drop.
pub struct WatchGuard {
    dog: Arc<Watchdog>,
    id: u64,
    fired: Arc<Mutex<Option<FireCause>>>,
}

impl WatchGuard {
    /// Did the watchdog trip this request's token, and why?
    pub fn fired(&self) -> Option<FireCause> {
        *self.fired.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        self.dog
            .entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .retain(|e| e.id != self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn token_bucket_admits_up_to_capacity() {
        let adm = Admission::new(2, 1e6);
        let a = adm.try_admit(10.0).unwrap();
        let b = adm.try_admit(10.0).unwrap();
        assert_eq!(adm.inflight(), 2);
        let err = adm.try_admit(10.0).unwrap_err();
        assert!(matches!(err, RejectReason::Busy { .. }), "{err}");
        drop(a);
        assert_eq!(adm.inflight(), 1);
        let _c = adm.try_admit(10.0).unwrap();
        drop(b);
    }

    #[test]
    fn cost_gate_scales_with_pressure_but_idle_always_admits() {
        let adm = Admission::new(4, 1000.0);
        // Idle: even an estimate above capacity is admitted.
        let huge = adm.try_admit(1e9).unwrap();
        // At pressure 1/4, remaining capacity is 750: a 900-op query is
        // turned away, a 700-op one accepted.
        let err = adm.try_admit(900.0).unwrap_err();
        assert!(matches!(err, RejectReason::TooExpensive { .. }), "{err}");
        let ok = adm.try_admit(700.0).unwrap();
        drop(huge);
        drop(ok);
        assert_eq!(adm.inflight(), 0);
    }

    #[test]
    fn ladder_descends_with_pressure() {
        assert_eq!(Rung::for_pressure(0.0), Rung::Full);
        assert_eq!(Rung::for_pressure(0.49), Rung::Full);
        assert_eq!(Rung::for_pressure(0.5), Rung::Tightened);
        assert_eq!(Rung::for_pressure(0.84), Rung::Tightened);
        assert_eq!(Rung::for_pressure(0.85), Rung::Truncating);
        assert_eq!(Rung::for_pressure(1.0), Rung::Truncating);

        let base = Duration::from_millis(800);
        let (d_full, ops_full) = Rung::Full.budgets(base, 1000.0);
        let (d_tight, ops_tight) = Rung::Tightened.budgets(base, 1000.0);
        let (d_trunc, ops_trunc) = Rung::Truncating.budgets(base, 1000.0);
        assert_eq!(d_full, base);
        assert_eq!(ops_full, None);
        assert!(d_tight < d_full && d_trunc < d_tight);
        assert_eq!(ops_tight, Some(1000));
        assert_eq!(ops_trunc, Some(250));
    }

    fn probe_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        (client, server_side)
    }

    #[test]
    fn watchdog_fires_on_hard_deadline() {
        let dog = Watchdog::start();
        let (_client, conn) = probe_pair();
        let token = CancelToken::new();
        let guard = dog
            .watch(
                token.clone(),
                Instant::now() + Duration::from_millis(10),
                &conn,
            )
            .unwrap();
        let start = Instant::now();
        while !token.is_cancelled() && start.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(token.is_cancelled(), "deadline never fired");
        assert_eq!(guard.fired(), Some(FireCause::Deadline));
        drop(guard);
        assert_eq!(dog.watched(), 0, "guard drop deregisters");
        dog.stop();
    }

    #[test]
    fn watchdog_fires_on_client_disconnect() {
        let dog = Watchdog::start();
        let (client, conn) = probe_pair();
        let token = CancelToken::new();
        let guard = dog
            .watch(
                token.clone(),
                Instant::now() + Duration::from_secs(30),
                &conn,
            )
            .unwrap();
        drop(client); // hang up
        let start = Instant::now();
        while !token.is_cancelled() && start.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(token.is_cancelled(), "disconnect never fired");
        assert_eq!(guard.fired(), Some(FireCause::Disconnect));
        dog.stop();
    }
}
