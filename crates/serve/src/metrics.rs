//! Daemon-level counters and their conservation law.
//!
//! Every request that reaches the daemon is counted exactly once on
//! the intake side (`admitted`, `rejected`, `shed`, `bad_requests`,
//! `not_found`), and every *admitted* request is classified exactly
//! once on the outcome side (`exact`, `degraded`, `timed_out`). At
//! quiescence `admitted = exact + degraded + timed_out` — the overload
//! suite asserts it after every soak.

use crate::error::Outcome;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotone counters, shared across worker threads.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Query requests that reached routing (any verb on `/query`).
    pub received: AtomicU64,
    /// Requests past admission control (holds a concurrency token).
    pub admitted: AtomicU64,
    /// Turned away by admission control (HTTP 429).
    pub rejected: AtomicU64,
    /// Connections dropped before parsing: the accept queue was full.
    pub shed: AtomicU64,
    /// Malformed requests (HTTP 400).
    pub bad_requests: AtomicU64,
    /// Queries naming an unloaded document (HTTP 404).
    pub not_found: AtomicU64,
    /// Admitted requests that completed with exact semantics.
    pub exact: AtomicU64,
    /// Admitted requests that returned a certified anytime answer.
    pub degraded: AtomicU64,
    /// Admitted requests reclaimed by the watchdog.
    pub timed_out: AtomicU64,
    /// Engine re-runs after a transient server fault.
    pub retries: AtomicU64,
}

/// Plain-value copy of [`ServeMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field-for-field mirror of ServeMetrics
pub struct ServeMetricsSnapshot {
    pub received: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub shed: u64,
    pub bad_requests: u64,
    pub not_found: u64,
    pub exact: u64,
    pub degraded: u64,
    pub timed_out: u64,
    pub retries: u64,
}

impl ServeMetrics {
    /// Records the single outcome of an admitted request.
    pub fn classify(&self, outcome: Outcome) {
        match outcome {
            Outcome::Exact => &self.exact,
            Outcome::Degraded => &self.degraded,
            Outcome::TimedOut => &self.timed_out,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-value copy of the counters.
    pub fn snapshot(&self) -> ServeMetricsSnapshot {
        ServeMetricsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            not_found: self.not_found.load(Ordering::Relaxed),
            exact: self.exact.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

impl ServeMetricsSnapshot {
    /// Outcomes recorded so far.
    pub fn settled(&self) -> u64 {
        self.exact + self.degraded + self.timed_out
    }

    /// The conservation law, valid at quiescence (no request mid-
    /// flight): every admitted request settled into exactly one class.
    pub fn conserved(&self) -> bool {
        self.admitted == self.settled()
    }

    /// Emits the snapshot as a JSON object (the `/metrics` body).
    pub fn to_json(&self, inflight: usize) -> String {
        format!(
            "{{\"received\": {}, \"admitted\": {}, \"rejected\": {}, \"shed\": {}, \
             \"bad_requests\": {}, \"not_found\": {}, \"exact\": {}, \"degraded\": {}, \
             \"timed_out\": {}, \"retries\": {}, \"inflight\": {inflight}}}",
            self.received,
            self.admitted,
            self.rejected,
            self.shed,
            self.bad_requests,
            self.not_found,
            self.exact,
            self.degraded,
            self.timed_out,
            self.retries,
        )
    }

    /// [`to_json`](Self::to_json) plus a `docs` field: a pre-rendered
    /// JSON array of per-document prepare costs (`index_build_ms` for
    /// parsed documents, `snapshot_attach_ms` for attached snapshots).
    pub fn to_json_with_docs(&self, inflight: usize, docs: &str) -> String {
        let base = self.to_json(inflight);
        format!("{}, \"docs\": {docs}}}", &base[..base.len() - 1])
    }
}

/// Ring buffer of the ladder decisions made for recent admitted
/// queries: which rung each ran on and the admission-time pressure
/// that picked it. `/metrics` reports the last [`CAPACITY`] samples
/// under `"history"`, oldest first — enough to see a pressure ramp
/// and the ladder's response to it without a metrics pipeline.
///
/// [`CAPACITY`]: RungHistory::CAPACITY
#[derive(Debug, Default)]
pub struct RungHistory {
    samples: Mutex<VecDeque<(&'static str, f64)>>,
}

impl RungHistory {
    /// Samples retained; older ones fall off the front.
    pub const CAPACITY: usize = 64;

    /// Records one admitted query's rung and admission-time pressure.
    pub fn record(&self, rung: &'static str, pressure: f64) {
        let mut samples = self.samples.lock().unwrap_or_else(|p| p.into_inner());
        if samples.len() == Self::CAPACITY {
            samples.pop_front();
        }
        samples.push_back((rung, pressure));
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `/metrics` `"history"` array, oldest sample first.
    pub fn to_json(&self) -> String {
        let samples = self.samples.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::from("[");
        for (i, (rung, pressure)) in samples.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"rung\": \"{rung}\", \"pressure\": {pressure:.3}}}"
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_feeds_the_conservation_law() {
        let m = ServeMetrics::default();
        m.admitted.fetch_add(3, Ordering::Relaxed);
        m.classify(Outcome::Exact);
        m.classify(Outcome::Degraded);
        let partial = m.snapshot();
        assert_eq!(partial.settled(), 2);
        assert!(!partial.conserved(), "one request still in flight");
        m.classify(Outcome::TimedOut);
        let done = m.snapshot();
        assert!(done.conserved());
        assert_eq!((done.exact, done.degraded, done.timed_out), (1, 1, 1));
    }

    #[test]
    fn json_emission_carries_every_counter() {
        let m = ServeMetrics::default();
        m.received.fetch_add(7, Ordering::Relaxed);
        let body = m.snapshot().to_json(2);
        assert!(body.contains("\"received\": 7"));
        assert!(body.contains("\"inflight\": 2"));
        crate::json::Json::parse(&body).expect("valid json");
    }

    #[test]
    fn docs_field_splices_into_valid_json() {
        let m = ServeMetrics::default();
        let docs = "[{\"name\": \"a\", \"backing\": \"snapshot\", \
                     \"snapshot_attach_ms\": 0.042}]";
        let body = m.snapshot().to_json_with_docs(0, docs);
        assert!(body.contains("\"docs\": ["));
        assert!(body.contains("\"snapshot_attach_ms\": 0.042"));
        crate::json::Json::parse(&body).expect("valid json");
    }

    #[test]
    fn rung_history_is_a_bounded_ring() {
        let h = RungHistory::default();
        assert!(h.is_empty());
        for i in 0..RungHistory::CAPACITY + 8 {
            h.record(if i % 2 == 0 { "full" } else { "tightened" }, 0.25);
        }
        assert_eq!(h.len(), RungHistory::CAPACITY, "older samples fall off");
        let json = h.to_json();
        assert!(json.contains("\"rung\": \"full\""));
        assert!(json.contains("\"pressure\": 0.250"));
        crate::json::Json::parse(&json).expect("valid json");
    }
}
