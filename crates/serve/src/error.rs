//! The serve-side error taxonomy and request outcome classes.
//!
//! Two deliberately separate types: [`ServeError`] is what *prevents* a
//! request from producing an answer (rejection, malformed input, I/O),
//! while [`Outcome`] classifies every *admitted* request exactly once —
//! the daemon's conservation law `admitted = exact + degraded +
//! timed_out` is a sum over `Outcome`, and rejections never enter it.

use std::fmt;
use std::time::Duration;
use whirlpool_core::EngineError;

/// Why admission control turned a request away.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// Every concurrency token is taken.
    Busy {
        /// Requests currently holding tokens.
        inflight: usize,
        /// Token-bucket size.
        max_inflight: usize,
    },
    /// The selectivity-based cost estimate exceeds the capacity left at
    /// the current pressure.
    TooExpensive {
        /// Predicted server operations for this query.
        estimated_ops: f64,
        /// Server operations the governor was willing to spend.
        capacity: f64,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Busy {
                inflight,
                max_inflight,
            } => write!(f, "{inflight}/{max_inflight} requests in flight"),
            RejectReason::TooExpensive {
                estimated_ops,
                capacity,
            } => write!(
                f,
                "estimated {estimated_ops:.0} server ops exceeds remaining capacity {capacity:.0}"
            ),
        }
    }
}

/// Everything that can go wrong serving one request.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control refused the query (HTTP 429 + `Retry-After`).
    Rejected {
        /// The admission decision.
        reason: RejectReason,
        /// Suggested client back-off.
        retry_after: Duration,
    },
    /// The watchdog cancelled the evaluation — hard deadline overrun or
    /// client disconnect (HTTP 504; the partial answer still ships).
    TimedOut {
        /// Wall time spent before the watchdog fired.
        elapsed: Duration,
    },
    /// The request itself was malformed (HTTP 400).
    BadRequest(String),
    /// The named document is not loaded (HTTP 404).
    NotFound(String),
    /// The engine layer failed; [`source`](std::error::Error::source)
    /// chains to the underlying [`EngineError`].
    Engine(EngineError),
    /// Transport failure on the connection.
    Io(std::io::Error),
}

impl ServeError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Rejected { .. } => 429,
            ServeError::TimedOut { .. } => 504,
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            // A malformed chaos spec is the client's mistake, not ours.
            ServeError::Engine(EngineError::InvalidFaultSpec(_)) => 400,
            ServeError::Engine(_) | ServeError::Io(_) => 500,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected {
                reason,
                retry_after,
            } => write!(
                f,
                "rejected: {reason} (retry after {}ms)",
                retry_after.as_millis()
            ),
            ServeError::TimedOut { elapsed } => {
                write!(f, "timed out after {}ms", elapsed.as_millis())
            }
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::NotFound(doc) => write!(f, "no such document: {doc:?}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Rejected { .. }
            | ServeError::TimedOut { .. }
            | ServeError::BadRequest(_)
            | ServeError::NotFound(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// How an *admitted* request ended. Exactly one of these is recorded
/// per admitted request, making the conservation law checkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion with the full answer semantics.
    Exact,
    /// Returned a certified anytime answer (deadline, op budget, or a
    /// dead server truncated it) — still HTTP 200, labelled honestly.
    Degraded,
    /// The watchdog reclaimed the worker (hard timeout or disconnect).
    TimedOut,
}

impl Outcome {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Exact => "exact",
            Outcome::Degraded => "degraded",
            Outcome::TimedOut => "timed_out",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_match_the_taxonomy() {
        let r = ServeError::Rejected {
            reason: RejectReason::Busy {
                inflight: 4,
                max_inflight: 4,
            },
            retry_after: Duration::from_millis(200),
        };
        assert_eq!(r.status(), 429);
        assert!(r.to_string().contains("4/4"));
        assert_eq!(
            ServeError::TimedOut {
                elapsed: Duration::from_millis(750)
            }
            .status(),
            504
        );
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServeError::NotFound("d".into()).status(), 404);
    }

    #[test]
    fn engine_errors_keep_their_source_chain() {
        use std::error::Error as _;
        let engine = whirlpool_core::FaultPlan::parse("not-a-spec", 0).unwrap_err();
        let err = ServeError::from(engine);
        assert_eq!(err.status(), 400, "a bad fault spec is the client's fault");
        let source = err.source().expect("engine error has a source");
        // Two hops: ServeError -> EngineError -> FaultSpecError.
        assert!(source.source().is_some());
        assert!(ServeError::BadRequest("x".into()).source().is_none());
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(Outcome::Exact.label(), "exact");
        assert_eq!(Outcome::Degraded.label(), "degraded");
        assert_eq!(Outcome::TimedOut.label(), "timed_out");
    }
}
