//! The daemon: accept loop, worker pool, and the per-request pipeline
//! (parse → admit → pick a rung → evaluate under watchdog → classify).

use crate::error::{Outcome, RejectReason, ServeError};
use crate::governor::{Admission, Rung, Watchdog};
use crate::http::{read_request, respond, Request};
use crate::json::{escape, Json};
use crate::metrics::{RungHistory, ServeMetrics};
use crate::shared::{DocState, Registry, Residency, Shared};
use std::collections::{BTreeSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use whirlpool_core::{
    evaluate_with_context, shard_ceiling_with_paths, Algorithm, CancelToken, Completeness,
    ContextOptions, EvalOptions, EvalResult, FaultPlan, QueryContext,
};
use whirlpool_index::DocView;
use whirlpool_pattern::WILDCARD;
use whirlpool_score::{CorpusStats, Normalization, Score, TfIdfModel};
use whirlpool_xml::NodeId;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral
    /// port — read the bound address off [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads evaluating queries.
    pub workers: usize,
    /// Accepted connections waiting for a worker; beyond this the
    /// accept loop sheds load with an immediate 429.
    pub queue_depth: usize,
    /// Admission token bucket: queries evaluated concurrently.
    pub max_inflight: usize,
    /// Server-operation spend considered affordable at zero load (the
    /// admission cost gate and the ladder's op budgets scale from it).
    pub capacity_ops: f64,
    /// Full-service deadline (the ladder shrinks it under pressure).
    pub base_deadline: Duration,
    /// Watchdog slack past the rung deadline before the hard cancel.
    pub watchdog_grace: Duration,
    /// Bounded re-runs after a transient server fault.
    pub retries: u32,
    /// Warm-start directory: at boot, every document that had to be
    /// parsed (no usable snapshot) gets a snapshot written here by a
    /// background thread, so the *next* boot peeks it in O(synopsis)
    /// instead of re-indexing.
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Residency target for lazily-peeked documents: at most this many
    /// attached snapshots at once (0 = unlimited). A target, not a
    /// hard cap — snapshots pinned by in-flight queries are not
    /// evictable.
    pub max_resident: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 8,
            max_inflight: 4,
            capacity_ops: 5e6,
            base_deadline: Duration::from_millis(2000),
            watchdog_grace: Duration::from_millis(250),
            retries: 1,
            snapshot_dir: None,
            max_resident: 0,
        }
    }
}

/// Connection queue between the accept loop and the workers.
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    depth: usize,
}

impl ConnQueue {
    fn new(depth: usize) -> ConnQueue {
        ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues unless full; a full queue hands the connection back so
    /// the caller can shed it with a 429.
    fn push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        if q.len() >= self.depth {
            return Err(conn);
        }
        q.push_back(conn);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks (with a poll-out for shutdown) until a connection is
    /// available.
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(conn) = q.pop_front() {
                return Some(conn);
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner());
            q = guard;
        }
    }
}

/// Everything a worker needs, cheaply clonable.
#[derive(Clone)]
struct Daemon {
    registry: Shared<Registry>,
    admission: Arc<Admission>,
    watchdog: Arc<Watchdog>,
    metrics: Arc<ServeMetrics>,
    config: Arc<ServeConfig>,
    request_seq: Arc<AtomicU64>,
    residency: Arc<Residency>,
    history: Arc<RungHistory>,
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`shutdown`](ServerHandle::shutdown).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    watchdog: Arc<Watchdog>,
    metrics: Arc<ServeMetrics>,
    admission: Arc<Admission>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Queries currently holding an admission token.
    pub fn inflight(&self) -> usize {
        self.admission.inflight()
    }

    /// Stops accepting, drains the workers, and joins every thread.
    /// In-flight evaluations finish (or are reclaimed by their own
    /// deadlines); queued-but-unserved connections are dropped.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.watchdog.stop();
    }
}

/// Starts the daemon: binds `config.addr`, spawns the accept loop, the
/// worker pool, and the watchdog, and returns immediately.
pub fn start(config: ServeConfig, registry: Registry) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnQueue::new(config.queue_depth));
    let residency = registry.residency();
    residency.set_max_resident(config.max_resident);
    let daemon = Daemon {
        registry: Shared::new(registry),
        admission: Arc::new(Admission::new(config.max_inflight, config.capacity_ops)),
        watchdog: Watchdog::start(),
        metrics: Arc::new(ServeMetrics::default()),
        config: Arc::new(config),
        request_seq: Arc::new(AtomicU64::new(0)),
        residency,
        history: Arc::new(RungHistory::default()),
    };

    let mut threads = Vec::new();
    {
        let queue = queue.clone();
        let shutdown = shutdown.clone();
        let metrics = daemon.metrics.clone();
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((conn, _)) => {
                                let _ = conn.set_nonblocking(false);
                                if let Err(mut conn) = queue.push(conn) {
                                    // Shed at the door: the queue is
                                    // full, so tell the client to back
                                    // off instead of making it wait.
                                    metrics.shed.fetch_add(1, Ordering::Relaxed);
                                    let _ = respond(
                                        &mut conn,
                                        429,
                                        &[("Retry-After", "1".to_string())],
                                        "{\"error\": \"overloaded: connection queue full\", \
                                         \"status\": 429}\n",
                                    );
                                    drain_before_close(conn);
                                }
                            }
                            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(10)),
                        }
                    }
                })?,
        );
    }
    // Warm-start maintenance: snapshot every parsed document in the
    // background so the next boot attaches instead of re-indexing.
    // Off the request path entirely — the thread holds only `Arc`s and
    // exits when the last document is written.
    if let Some(dir) = daemon.config.snapshot_dir.clone() {
        let parsed: Vec<Arc<DocState>> = daemon
            .registry
            .read()
            .all()
            .into_iter()
            .filter(|d| !d.is_snapshot())
            .collect();
        if !parsed.is_empty() {
            threads.push(
                std::thread::Builder::new()
                    .name("serve-snapshotter".into())
                    .spawn(move || {
                        let _ = std::fs::create_dir_all(&dir);
                        for d in parsed {
                            let Some((doc, index)) = d.as_parsed() else {
                                continue;
                            };
                            // Write-then-rename: a crash mid-write must
                            // not leave a truncated file that poisons
                            // the next warm start (attach would reject
                            // it, but the boot would fall back to a
                            // cold parse).
                            let path = dir.join(format!("{}.wps", d.name));
                            let tmp = dir.join(format!(".{}.wps.tmp", d.name));
                            if whirlpool_store::save_snapshot(doc, index, &tmp).is_ok() {
                                let _ = std::fs::rename(&tmp, &path);
                            } else {
                                let _ = std::fs::remove_file(&tmp);
                            }
                        }
                    })?,
            );
        }
    }
    for i in 0..daemon.config.workers.max(1) {
        let queue = queue.clone();
        let shutdown = shutdown.clone();
        let daemon = daemon.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || {
                    while let Some(mut conn) = queue.pop(&shutdown) {
                        handle_connection(&daemon, &mut conn);
                    }
                })?,
        );
    }

    Ok(ServerHandle {
        addr,
        shutdown,
        threads,
        watchdog: daemon.watchdog.clone(),
        metrics: daemon.metrics.clone(),
        admission: daemon.admission.clone(),
    })
}

/// Starts the daemon and blocks the calling thread until the process
/// dies (the CLI `serve` subcommand's mode of operation).
pub fn serve_blocking(config: ServeConfig, registry: Registry) -> std::io::Result<()> {
    let _handle = start(config, registry)?;
    loop {
        std::thread::park();
    }
}

// ---------------------------------------------------------------------
// Request pipeline.

/// Discards whatever request bytes the client already sent, then drops
/// the connection. Closing a socket whose receive buffer still holds
/// unread data makes Linux abort with RST and discard the in-flight
/// response — a shed client would see "connection reset" instead of its
/// 429. Bounded (64 KiB, 50 ms) so a slow or malicious client cannot
/// stall the accept loop.
fn drain_before_close(mut conn: TcpStream) {
    use std::io::Read as _;
    let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 64 * 1024 {
        match conn.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn handle_connection(daemon: &Daemon, conn: &mut TcpStream) {
    let request = match read_request(conn) {
        Ok(r) => r,
        Err(e) => {
            daemon.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = error_response(conn, &e);
            return;
        }
    };
    let result = route(daemon, conn, &request);
    if let Err(e) = result {
        match e {
            ServeError::Rejected { .. } => daemon.metrics.rejected.fetch_add(1, Ordering::Relaxed),
            ServeError::BadRequest(_) | ServeError::Engine(_) => {
                daemon.metrics.bad_requests.fetch_add(1, Ordering::Relaxed)
            }
            ServeError::NotFound(_) => daemon.metrics.not_found.fetch_add(1, Ordering::Relaxed),
            ServeError::TimedOut { .. } | ServeError::Io(_) => 0,
        };
        let _ = error_response(conn, &e);
    }
}

fn error_response(conn: &mut TcpStream, e: &ServeError) -> std::io::Result<()> {
    let mut headers: Vec<(&str, String)> = Vec::new();
    if let ServeError::Rejected { retry_after, .. } = e {
        headers.push(("Retry-After", retry_after.as_secs().max(1).to_string()));
    }
    let body = format!(
        "{{\"error\": \"{}\", \"status\": {}}}\n",
        escape(&e.to_string()),
        e.status()
    );
    respond(conn, e.status(), &headers, &body)
}

fn route(daemon: &Daemon, conn: &mut TcpStream, request: &Request) -> Result<(), ServeError> {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"status\": \"ok\", \"documents\": {}, \"inflight\": {}, \
                 \"pressure\": {:.3}}}\n",
                daemon.registry.read().len(),
                daemon.admission.inflight(),
                daemon.admission.pressure(),
            );
            respond(conn, 200, &[], &body)?;
            Ok(())
        }
        ("GET", "/metrics") => {
            // Per-document prepare costs ride along with the counters:
            // `index_build_ms` for cold (parsed) documents,
            // `snapshot_attach_ms` for warm (attached) ones,
            // `snapshot_peek_ms` for lazy (peeked) ones.
            let docs = daemon.registry.read().all();
            let mut docs_json = String::from("[");
            for (i, d) in docs.iter().enumerate() {
                if i > 0 {
                    docs_json.push_str(", ");
                }
                docs_json.push_str(&format!(
                    "{{\"name\": \"{}\", \"backing\": \"{}\", \"resident\": {}, \
                     \"{}\": {:.3}}}",
                    escape(&d.name),
                    d.backing_label(),
                    d.is_resident(),
                    d.prepare.stat_name(),
                    d.prepare.ms(),
                ));
            }
            docs_json.push(']');
            let base = daemon
                .metrics
                .snapshot()
                .to_json_with_docs(daemon.admission.inflight(), &docs_json);
            // Splice in the residency counters and the ladder's recent
            // decisions (same string surgery as the docs field).
            let body = format!(
                "{}, \"shards\": {}, \"history\": {}}}\n",
                &base[..base.len() - 1],
                daemon.residency.to_json(),
                daemon.history.to_json(),
            );
            respond(conn, 200, &[], &body)?;
            Ok(())
        }
        ("POST", "/query") => {
            daemon.metrics.received.fetch_add(1, Ordering::Relaxed);
            handle_query(daemon, conn, &request.body)
        }
        ("GET", "/query") => Err(ServeError::BadRequest(
            "use POST /query with a JSON body".into(),
        )),
        _ => Err(ServeError::NotFound(request.target.clone())),
    }
}

/// The parsed `/query` body.
struct QueryRequest {
    doc: String,
    query: String,
    k: usize,
    /// Query every loaded document as one sharded corpus instead of a
    /// single named document.
    collection: bool,
    fault: Option<String>,
    fault_seed: u64,
    /// Test hook: artificial per-op cost, for exercising the ladder
    /// and the watchdog without a huge document.
    op_cost: Option<Duration>,
}

impl QueryRequest {
    fn parse(body: &[u8]) -> Result<QueryRequest, ServeError> {
        let text = std::str::from_utf8(body)
            .map_err(|_| ServeError::BadRequest("body is not utf-8".into()))?;
        let v = Json::parse(text).map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let query = v
            .get("query")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::BadRequest("missing \"query\" field".into()))?
            .to_string();
        Ok(QueryRequest {
            doc: v
                .get("doc")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            query,
            k: v.get("k").and_then(Json::as_u64).unwrap_or(10).max(1) as usize,
            collection: v.get("collection").and_then(Json::as_bool).unwrap_or(false),
            fault: v
                .get("fault")
                .and_then(Json::as_str)
                .map(str::to_string)
                .filter(|s| !s.is_empty()),
            fault_seed: v.get("fault_seed").and_then(Json::as_u64).unwrap_or(0),
            op_cost: v
                .get("op_cost_us")
                .and_then(Json::as_u64)
                .map(Duration::from_micros),
        })
    }
}

fn handle_query(daemon: &Daemon, conn: &mut TcpStream, body: &[u8]) -> Result<(), ServeError> {
    let req = QueryRequest::parse(body)?;
    if req.collection {
        return handle_collection_query(daemon, conn, req);
    }
    let doc_state: Arc<DocState> = daemon
        .registry
        .read()
        .get(&req.doc)
        .ok_or_else(|| ServeError::NotFound(req.doc.clone()))?;
    let pattern = whirlpool_pattern::parse_pattern(&req.query)
        .map_err(|e| ServeError::BadRequest(format!("query {:?}: {e}", req.query)))?;
    // Validate the chaos spec before admission: a malformed spec is the
    // client's fault, not load.
    if let Some(spec) = &req.fault {
        FaultPlan::parse(spec, req.fault_seed)?;
    }

    // Parse/index happened at load time; per-request cost from here on
    // is the score model, the context (selectivity sample), and the
    // evaluation itself. A lazily-peeked document pays its one-time
    // snapshot attach here, on first use.
    let access = daemon
        .residency
        .acquire(&doc_state)
        .map_err(|e| store_error(&doc_state.name, e))?;
    let model = TfIdfModel::build_view(
        access.doc(),
        access.index(),
        &pattern,
        Normalization::Sparse,
    );
    let ctx = QueryContext::new_view(
        access.doc(),
        access.index(),
        &pattern,
        &model,
        ContextOptions {
            op_cost: req.op_cost,
            ..ContextOptions::default()
        },
    );

    // Admission: token bucket + the selectivity-based cost gate.
    let estimate = ctx.cost_estimate();
    let permit = match daemon.admission.try_admit(estimate.estimated_server_ops) {
        Ok(p) => p,
        Err(reason) => {
            let retry_after = match reason {
                RejectReason::Busy { .. } => Duration::from_secs(1),
                RejectReason::TooExpensive { .. } => Duration::from_secs(2),
            };
            return Err(ServeError::Rejected {
                reason,
                retry_after,
            });
        }
    };

    // The ladder: pressure at admission picks the rung and its budgets.
    let pressure = daemon.admission.pressure();
    let rung = Rung::for_pressure(pressure);
    daemon.history.record(rung.label(), pressure);
    let (deadline, max_ops) = rung.budgets(daemon.config.base_deadline, daemon.config.capacity_ops);

    // The watchdog backstops the rung deadline and watches for client
    // disconnect. No socket I/O happens until the guard is dropped
    // (the probe shares the connection's file description).
    let cancel = CancelToken::new();
    let started = Instant::now();
    let guard = daemon.watchdog.watch(
        cancel.clone(),
        started + deadline + daemon.config.watchdog_grace,
        conn,
    )?;
    // Counted only now: every code path past this point classifies the
    // request into exactly one outcome, keeping `admitted = exact +
    // degraded + timed_out` conserved.
    daemon.metrics.admitted.fetch_add(1, Ordering::Relaxed);

    let mut options = EvalOptions::top_k(req.k);
    options.deadline = Some(deadline);
    options.max_server_ops = max_ops;
    options.cancel = Some(cancel.clone());

    // Bounded retry on transient faults: a run truncated by a *server
    // failure* (not by its budgets) is re-run with backoff — the fault
    // layer draws fresh randomness, so delay-style faults clear. The
    // engine's metrics accumulate in the context across attempts, so
    // failure detection works on the per-attempt delta.
    let mut attempts = 0u32;
    let mut failed_before = 0;
    let result: EvalResult = loop {
        options.fault_plan = req
            .fault
            .as_deref()
            .map(|spec| FaultPlan::parse(spec, req.fault_seed.wrapping_add(attempts as u64)))
            .transpose()?;
        // Whirlpool-S: the worker pool already provides cross-request
        // parallelism, so a per-request multi-threaded engine would
        // only add thread churn under load.
        let r = evaluate_with_context(&ctx, &Algorithm::WhirlpoolS, &options);
        let newly_failed = r.metrics.servers_failed - failed_before;
        failed_before = r.metrics.servers_failed;
        let transient_fault = newly_failed > 0 && !r.completeness.is_exact();
        if transient_fault
            && attempts < daemon.config.retries
            && guard.fired().is_none()
            && started.elapsed() < deadline
        {
            attempts += 1;
            daemon.metrics.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(5 * attempts as u64));
            // The remaining wall budget shrinks with what the failed
            // attempt spent.
            options.deadline = Some(deadline.saturating_sub(started.elapsed()));
            continue;
        }
        break r;
    };

    // Classification: exactly one outcome per admitted request, before
    // any fallible I/O so the conservation law survives write errors.
    let fired = guard.fired();
    drop(guard);
    let outcome = match (fired, &result.completeness) {
        (Some(_), _) => Outcome::TimedOut,
        (None, Completeness::Exact) => Outcome::Exact,
        (None, Completeness::Truncated { .. }) => Outcome::Degraded,
    };
    daemon.metrics.classify(outcome);
    drop(permit);
    // Restore blocking I/O (the watchdog probe flipped the shared file
    // description to non-blocking). Failure means the client is gone —
    // the response write below will fail harmlessly too.
    let _ = conn.set_nonblocking(false);

    let status = match outcome {
        Outcome::TimedOut => 504,
        _ => 200,
    };
    let body = query_response_json(
        daemon.request_seq.fetch_add(1, Ordering::Relaxed),
        access.doc(),
        outcome,
        rung,
        attempts,
        &result,
        started.elapsed(),
    );
    // A disconnected client can't receive this; the write fails and
    // that is fine — the worker is already reclaimed.
    let _ = respond(conn, status, &[], &body);
    Ok(())
}

/// One corpus-wide answer of a collection query: score, owning shard
/// (an index into the sorted document list), answer node. Ordered so a
/// `BTreeSet` keeps the weakest answer first and node ids from
/// different documents cannot collide.
type CollectionEntry = (Score, usize, NodeId);

/// Shard-level accounting of one collection request.
#[derive(Clone, Copy, Default)]
struct ShardCounts {
    total: usize,
    visited: usize,
    pruned: usize,
    /// Pruned while the document was a lazy, non-resident snapshot —
    /// the prune saved the attach itself.
    pruned_before_attach: usize,
    skipped_budget: usize,
}

/// The collection-mode pipeline: one request evaluated over *every*
/// loaded document as a sharded corpus — corpus-level idf, global
/// threshold sharing, synopsis-based shard pruning — the daemon's
/// counterpart of [`whirlpool_core::evaluate_collection`], run over
/// the registry's `DocState`s (which a `Collection` cannot borrow;
/// it owns its shards). Shards run sequentially on the one worker
/// thread: the pool already provides cross-request parallelism, so
/// shard-level threads would only oversubscribe under load.
///
/// Fault injection is rejected — the spec's server indices are
/// per-document, so one spec cannot name servers across shards.
fn handle_collection_query(
    daemon: &Daemon,
    conn: &mut TcpStream,
    req: QueryRequest,
) -> Result<(), ServeError> {
    if req.fault.is_some() {
        return Err(ServeError::BadRequest(
            "fault injection is per-document; it is not supported in collection mode".into(),
        ));
    }
    if !req.doc.is_empty() {
        return Err(ServeError::BadRequest(
            "collection mode queries every loaded document; drop the \"doc\" field".into(),
        ));
    }
    let docs: Vec<Arc<DocState>> = daemon.registry.read().all();
    if docs.is_empty() {
        return Err(ServeError::NotFound("no documents loaded".into()));
    }
    let pattern = whirlpool_pattern::parse_pattern(&req.query)
        .map_err(|e| ServeError::BadRequest(format!("query {:?}: {e}", req.query)))?;

    // The corpus model: document-frequency counts pooled over every
    // shard, so an answer's score does not depend on which document
    // holds it. With any lazy document in the registry the synopsis
    // path is used for *all* of them — the corpus model must not
    // depend on which documents happen to be resident, or re-running
    // the same query after evictions would score answers differently.
    let answer_tag = pattern.node(pattern.root()).tag.clone();
    let any_lazy = docs.iter().any(|d| d.is_lazy());
    let mut stats = CorpusStats::new(&pattern);
    for d in &docs {
        if any_lazy {
            stats.add_shard_synopsis(&d.synopsis, &answer_tag);
        } else {
            stats.add_shard_view(d.doc(), d.index(), &answer_tag);
        }
    }
    let model = stats.model(Normalization::Sparse);

    let mut options = EvalOptions::top_k(req.k);

    // Ceiling-descending shard order: rich shards first, so the global
    // threshold rises as fast as possible; provably answer-free shards
    // (`None`) last. Stored path synopses tighten the ceilings without
    // attaching anything.
    let mut order: Vec<(usize, Option<Score>)> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            (
                i,
                shard_ceiling_with_paths(
                    &d.synopsis,
                    d.paths.as_ref(),
                    &pattern,
                    &model,
                    options.relax,
                ),
            )
        })
        .collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // Admission: the per-document path prices a request off its
    // context's selectivity sample, but building every shard's context
    // up front would defeat pruning's laziness. The synopses give a
    // coarse stand-in: candidate answer roots across the corpus, times
    // one op per server.
    let per_root_ops = pattern.server_ids().count() as f64 + 1.0;
    let estimate: f64 = docs
        .iter()
        .map(|d| {
            let roots = if answer_tag == WILDCARD {
                d.synopsis.elements()
            } else {
                d.synopsis.tag_count(&answer_tag)
            };
            roots as f64 * per_root_ops
        })
        .sum();
    let permit = match daemon.admission.try_admit(estimate) {
        Ok(p) => p,
        Err(reason) => {
            let retry_after = match reason {
                RejectReason::Busy { .. } => Duration::from_secs(1),
                RejectReason::TooExpensive { .. } => Duration::from_secs(2),
            };
            return Err(ServeError::Rejected {
                reason,
                retry_after,
            });
        }
    };

    // The ladder and the watchdog govern the *whole* corpus run: each
    // shard gets whatever wall clock and op budget the earlier shards
    // left over.
    let pressure = daemon.admission.pressure();
    let rung = Rung::for_pressure(pressure);
    daemon.history.record(rung.label(), pressure);
    let (deadline, max_ops) = rung.budgets(daemon.config.base_deadline, daemon.config.capacity_ops);
    let cancel = CancelToken::new();
    let started = Instant::now();
    let guard = daemon.watchdog.watch(
        cancel.clone(),
        started + deadline + daemon.config.watchdog_grace,
        conn,
    )?;
    daemon.metrics.admitted.fetch_add(1, Ordering::Relaxed);
    options.cancel = Some(cancel.clone());

    let mut topk: BTreeSet<CollectionEntry> = BTreeSet::new();
    let mut threshold = Score::ZERO;
    let mut counts = ShardCounts {
        total: docs.len(),
        ..ShardCounts::default()
    };
    let mut truncated = false;
    let mut pending = 0u64;
    let mut bound = 0.0f64;
    let mut ops_spent = 0u64;

    for &(idx, ceiling) in &order {
        let d = &docs[idx];
        // Budgets first: an exhausted corpus budget skips the shard and
        // certifies the skip with the shard's ceiling.
        let remaining = deadline.saturating_sub(started.elapsed());
        let ops_left = max_ops.map(|m| m.saturating_sub(ops_spent));
        if remaining.is_zero() || ops_left == Some(0) || guard.fired().is_some() {
            counts.skipped_budget += 1;
            truncated = true;
            pending += 1;
            bound = bound.max(ceiling.map_or(0.0, |c| c.value()));
            continue;
        }
        if shard_prunable(ceiling, threshold) {
            counts.pruned += 1;
            if d.is_lazy() && !d.is_resident() {
                // The whole point of peeking: this document's arrays
                // were never read off disk.
                counts.pruned_before_attach += 1;
                daemon
                    .residency
                    .pruned_before_attach
                    .fetch_add(1, Ordering::Relaxed);
            }
            continue;
        }
        options.deadline = Some(remaining);
        options.max_server_ops = ops_left;
        // Threshold sharing: seed the shard run's pruning threshold
        // with the current corpus k-th score.
        options.threshold_floor = threshold.value();
        // A lazy document attaches here — the first time the corpus
        // run actually needs it. Attach failure (file vanished,
        // corrupted) degrades the answer like a budget skip: the
        // shard's ceiling certifies what it could have contributed.
        let access = match daemon.residency.acquire(d) {
            Ok(a) => a,
            Err(_) => {
                counts.skipped_budget += 1;
                truncated = true;
                pending += 1;
                bound = bound.max(ceiling.map_or(0.0, |c| c.value()));
                continue;
            }
        };
        let ctx = QueryContext::new_view(
            access.doc(),
            access.index(),
            &pattern,
            &model,
            ContextOptions {
                op_cost: req.op_cost,
                ..ContextOptions::default()
            },
        );
        let r = evaluate_with_context(&ctx, &Algorithm::WhirlpoolS, &options);
        counts.visited += 1;
        ops_spent += r.metrics.server_ops;
        for a in &r.answers {
            topk.insert((a.score, idx, a.root));
            if topk.len() > req.k {
                let weakest = *topk.iter().next().expect("non-empty");
                topk.remove(&weakest);
            }
        }
        if topk.len() == req.k {
            if let Some(&(s, _, _)) = topk.iter().next() {
                threshold = s;
            }
        }
        if let Completeness::Truncated {
            pending_matches,
            score_bound,
        } = r.completeness
        {
            truncated = true;
            pending += pending_matches;
            bound = bound.max(score_bound);
        }
    }

    let answers: Vec<CollectionEntry> = topk.into_iter().rev().collect();
    let completeness = if truncated {
        if let Some(&(s, _, _)) = answers.first() {
            bound = bound.max(s.value());
        }
        Completeness::Truncated {
            pending_matches: pending,
            score_bound: bound,
        }
    } else {
        Completeness::Exact
    };

    // Classification mirrors the per-document path: exactly one outcome
    // per admitted request, decided before any fallible I/O.
    let fired = guard.fired();
    drop(guard);
    let outcome = match (fired, &completeness) {
        (Some(_), _) => Outcome::TimedOut,
        (None, Completeness::Exact) => Outcome::Exact,
        (None, Completeness::Truncated { .. }) => Outcome::Degraded,
    };
    daemon.metrics.classify(outcome);
    drop(permit);
    let _ = conn.set_nonblocking(false);

    let status = match outcome {
        Outcome::TimedOut => 504,
        _ => 200,
    };
    let body = collection_response_json(
        daemon.request_seq.fetch_add(1, Ordering::Relaxed),
        &docs,
        &daemon.residency,
        outcome,
        rung,
        &completeness,
        &answers,
        counts,
        started.elapsed(),
    );
    let _ = respond(conn, status, &[], &body);
    Ok(())
}

/// Shard pruning, strict `<` like the engines: a shard that can only
/// tie the k-th answer may still contribute a valid tie. A `None`
/// ceiling (provably answer-free shard) always prunes.
fn shard_prunable(ceiling: Option<Score>, threshold: Score) -> bool {
    match ceiling {
        None => true,
        Some(c) => c < threshold,
    }
}

/// A lazy attach failure is the daemon's problem, not the client's:
/// HTTP 500 via the transport-error class.
fn store_error(doc: &str, e: whirlpool_store::StoreError) -> ServeError {
    ServeError::Io(std::io::Error::other(format!("attach {doc}: {e}")))
}

#[allow(clippy::too_many_arguments)]
fn collection_response_json(
    seq: u64,
    docs: &[Arc<DocState>],
    residency: &Residency,
    outcome: Outcome,
    rung: Rung,
    completeness: &Completeness,
    answers: &[CollectionEntry],
    counts: ShardCounts,
    elapsed: Duration,
) -> String {
    let mut body = String::with_capacity(512);
    body.push_str("{\n");
    body.push_str(&format!("  \"request\": {seq},\n"));
    body.push_str(&format!("  \"outcome\": \"{}\",\n", outcome.label()));
    body.push_str(&format!("  \"rung\": \"{}\",\n", rung.label()));
    body.push_str(&format!(
        "  \"completeness\": \"{}\",\n",
        completeness.label()
    ));
    if let Completeness::Truncated {
        pending_matches,
        score_bound,
    } = completeness
    {
        body.push_str(&format!("  \"pending_matches\": {pending_matches},\n"));
        body.push_str(&format!("  \"score_bound\": {score_bound:.6},\n"));
    }
    body.push_str(&format!(
        "  \"shards\": {{\"total\": {}, \"visited\": {}, \"pruned\": {}, \
         \"pruned_before_attach\": {}, \"skipped_budget\": {}}},\n",
        counts.total,
        counts.visited,
        counts.pruned,
        counts.pruned_before_attach,
        counts.skipped_budget,
    ));
    body.push_str(&format!(
        "  \"elapsed_ms\": {:.3},\n",
        elapsed.as_secs_f64() * 1e3
    ));
    body.push_str("  \"answers\": [\n");
    for (i, &(score, shard, root)) in answers.iter().enumerate() {
        let d = &docs[shard];
        // Re-acquire for the id attribute: a lazy shard may have been
        // evicted since its run, in which case this re-attaches (or,
        // on failure, ships the answer without its id).
        let id = residency
            .acquire(d)
            .ok()
            .and_then(|access| {
                access
                    .doc()
                    .attribute(root, "id")
                    .map(|v| format!(", \"id\": \"{}\"", escape(v)))
            })
            .unwrap_or_default();
        body.push_str(&format!(
            "    {{\"rank\": {}, \"doc\": \"{}\", \"node\": {}, \"score\": {:.6}{id}}}{}\n",
            i + 1,
            escape(&d.name),
            root.index(),
            score.value(),
            if i + 1 < answers.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    body
}

fn query_response_json(
    seq: u64,
    doc: DocView<'_>,
    outcome: Outcome,
    rung: Rung,
    retries: u32,
    result: &EvalResult,
    elapsed: Duration,
) -> String {
    let mut body = String::with_capacity(512);
    body.push_str("{\n");
    body.push_str(&format!("  \"request\": {seq},\n"));
    body.push_str(&format!("  \"outcome\": \"{}\",\n", outcome.label()));
    body.push_str(&format!("  \"rung\": \"{}\",\n", rung.label()));
    body.push_str(&format!(
        "  \"completeness\": \"{}\",\n",
        result.completeness.label()
    ));
    if let Completeness::Truncated {
        pending_matches,
        score_bound,
    } = result.completeness
    {
        body.push_str(&format!("  \"pending_matches\": {pending_matches},\n"));
        body.push_str(&format!("  \"score_bound\": {score_bound:.6},\n"));
    }
    body.push_str(&format!("  \"retries\": {retries},\n"));
    body.push_str(&format!(
        "  \"servers_failed\": {},\n",
        result.metrics.servers_failed
    ));
    body.push_str(&format!(
        "  \"cancellations\": {},\n",
        result.metrics.cancellations
    ));
    body.push_str(&format!(
        "  \"elapsed_ms\": {:.3},\n",
        elapsed.as_secs_f64() * 1e3
    ));
    body.push_str("  \"answers\": [\n");
    for (i, a) in result.answers.iter().enumerate() {
        let id = doc
            .attribute(a.root, "id")
            .map(|v| format!(", \"id\": \"{}\"", escape(v)))
            .unwrap_or_default();
        body.push_str(&format!(
            "    {{\"rank\": {}, \"node\": {}, \"score\": {:.6}{id}}}{}\n",
            i + 1,
            a.root.index(),
            a.score.value(),
            if i + 1 < result.answers.len() {
                ","
            } else {
                ""
            },
        ));
    }
    body.push_str("  ]\n}\n");
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    fn test_registry() -> Registry {
        let doc = whirlpool_xml::parse_document(
            "<shelf>\
             <book id=\"b1\"><title>dune</title><isbn>1</isbn></book>\
             <book id=\"b2\"><title>dune</title></book>\
             <book id=\"b3\"><review><title>dune</title></review></book>\
             </shelf>",
        )
        .unwrap();
        let mut registry = Registry::new();
        registry.insert(DocState::new("books", doc));
        registry
    }

    fn send(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split(' ')
            .nth(1)
            .and_then(|v| v.parse().ok())
            .expect("status line");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn post_query(addr: SocketAddr, json: &str) -> (u16, String) {
        send(
            addr,
            &format!(
                "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{json}",
                json.len()
            ),
        )
    }

    #[test]
    fn serves_health_query_and_metrics_end_to_end() {
        let handle = start(ServeConfig::default(), test_registry()).unwrap();
        let addr = handle.addr();

        let (status, body) = send(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"documents\": 1"));

        let (status, body) = post_query(addr, r#"{"query": "//book[./title and ./isbn]", "k": 2}"#);
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("exact"));
        assert_eq!(v.get("rung").and_then(Json::as_str), Some("full"));
        let Some(Json::Arr(answers)) = v.get("answers") else {
            panic!("no answers: {body}")
        };
        assert_eq!(answers.len(), 2);
        assert_eq!(
            answers[0].get("id").and_then(Json::as_str),
            Some("b1"),
            "the exact match outranks the relaxed ones"
        );

        // Unknown documents 404; malformed bodies and queries 400.
        let (status, _) = post_query(addr, r#"{"doc": "nope", "query": "//a"}"#);
        assert_eq!(status, 404);
        let (status, _) = post_query(addr, "not json");
        assert_eq!(status, 400);
        let (status, _) = post_query(addr, r#"{"query": "///["}"#);
        assert_eq!(status, 400);
        let (status, _) = post_query(addr, r#"{"query": "//book", "fault": "garbage"}"#);
        assert_eq!(status, 400, "bad fault specs are the client's fault");

        let (status, body) = send(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        let m = Json::parse(&body).unwrap();
        assert_eq!(m.get("admitted").and_then(Json::as_u64), Some(1));
        assert_eq!(m.get("exact").and_then(Json::as_u64), Some(1));
        assert_eq!(m.get("inflight").and_then(Json::as_u64), Some(0));

        handle.shutdown();
    }

    #[test]
    fn warm_start_serves_identically_and_reports_attach_cost() {
        let dir = std::env::temp_dir().join(format!("wp-serve-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wps = dir.join("books.wps");
        {
            let registry = test_registry();
            let state = registry.get("books").unwrap();
            let (doc, index) = state.as_parsed().unwrap();
            whirlpool_store::save_snapshot(doc, index, &wps).unwrap();
        }

        // Cold and warm daemons answer the same query identically.
        let cold = start(ServeConfig::default(), test_registry()).unwrap();
        let mut warm_registry = Registry::new();
        warm_registry.insert(DocState::attach("books", &wps).unwrap());
        let warm = start(ServeConfig::default(), warm_registry).unwrap();
        let query = r#"{"query": "//book[./title and ./isbn]", "k": 3}"#;
        let (cs, cold_body) = post_query(cold.addr(), query);
        let (ws, warm_body) = post_query(warm.addr(), query);
        assert_eq!((cs, ws), (200, 200), "{cold_body}\n{warm_body}");
        let answers = |body: &str| -> Vec<(u64, String)> {
            let v = Json::parse(body).unwrap();
            let Some(Json::Arr(list)) = v.get("answers").cloned() else {
                panic!("no answers: {body}")
            };
            list.iter()
                .map(|a| {
                    (
                        a.get("node").and_then(Json::as_u64).unwrap(),
                        format!("{:?}", a.get("score")),
                    )
                })
                .collect()
        };
        assert_eq!(
            answers(&cold_body),
            answers(&warm_body),
            "snapshot-backed answers must match the parsed ones"
        );

        // /metrics names the backing and the prepare cost per document.
        let (_, body) = send(warm.addr(), "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(body.contains("\"backing\": \"snapshot\""), "{body}");
        assert!(body.contains("\"snapshot_attach_ms\""), "{body}");
        let (_, body) = send(cold.addr(), "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(body.contains("\"backing\": \"parsed\""), "{body}");
        assert!(body.contains("\"index_build_ms\""), "{body}");

        cold.shutdown();
        warm.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_snapshotter_writes_attachable_snapshots() {
        let dir = std::env::temp_dir().join(format!("wp-serve-snapper-{}", std::process::id()));
        let config = ServeConfig {
            snapshot_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let handle = start(config, test_registry()).unwrap();
        let wps = dir.join("books.wps");
        // The snapshotter runs off the request path; poll briefly.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !wps.exists() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.shutdown();
        let state = DocState::attach("books", &wps).expect("background snapshot must attach");
        assert!(state.is_snapshot());
        assert_eq!(state.synopsis.tag_count("book"), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Three documents of sharply different promise: `rich` holds the
    /// only full matches, `sparse` holds bare books (ceiling = root
    /// contribution only), `none` holds no book at all (no ceiling).
    fn collection_registry() -> Registry {
        let rich = whirlpool_xml::parse_document(
            "<shelf>\
             <book id=\"r1\"><title>dune</title><isbn>1</isbn></book>\
             <book id=\"r2\"><title>ubik</title><isbn>2</isbn></book>\
             </shelf>",
        )
        .unwrap();
        let sparse = whirlpool_xml::parse_document(
            "<shelf><book id=\"s1\"><blurb>x</blurb></book>\
             <book id=\"s2\"><blurb>y</blurb></book></shelf>",
        )
        .unwrap();
        let none =
            whirlpool_xml::parse_document("<shelf><cd><title>x</title></cd></shelf>").unwrap();
        let mut registry = Registry::new();
        registry.insert(DocState::new("rich", rich));
        registry.insert(DocState::new("sparse", sparse));
        registry.insert(DocState::new("none", none));
        registry
    }

    #[test]
    fn collection_query_spans_documents_and_prunes() {
        let handle = start(ServeConfig::default(), collection_registry()).unwrap();
        let addr = handle.addr();
        let (status, body) = post_query(
            addr,
            r#"{"collection": true, "query": "//book[./title and ./isbn]", "k": 2}"#,
        );
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("exact"));
        let shards = v.get("shards").expect("shards object");
        assert_eq!(shards.get("total").and_then(Json::as_u64), Some(3));
        let visited = shards.get("visited").and_then(Json::as_u64).unwrap();
        let pruned = shards.get("pruned").and_then(Json::as_u64).unwrap();
        assert_eq!(visited + pruned, 3, "{body}");
        assert!(pruned >= 1, "the bookless document must be pruned: {body}");
        let Some(Json::Arr(answers)) = v.get("answers") else {
            panic!("no answers: {body}")
        };
        assert_eq!(answers.len(), 2);
        let mut ids: Vec<&str> = answers
            .iter()
            .map(|a| {
                assert_eq!(
                    a.get("doc").and_then(Json::as_str),
                    Some("rich"),
                    "only rich holds full matches: {body}"
                );
                a.get("id").and_then(Json::as_str).unwrap()
            })
            .collect();
        ids.sort_unstable();
        // The two full matches tie, so their relative order is free.
        assert_eq!(ids, ["r1", "r2"]);
        handle.shutdown();
    }

    /// The [`collection_registry`] documents written as snapshot files
    /// and *peeked*, not attached: only a query that survives pruning
    /// pays the attach.
    fn lazy_collection_registry(dir: &std::path::Path) -> Registry {
        let sources = [
            (
                "rich",
                "<shelf>\
                 <book id=\"r1\"><title>dune</title><isbn>1</isbn></book>\
                 <book id=\"r2\"><title>ubik</title><isbn>2</isbn></book>\
                 </shelf>",
            ),
            (
                "sparse",
                "<shelf><book id=\"s1\"><blurb>x</blurb></book>\
                 <book id=\"s2\"><blurb>y</blurb></book></shelf>",
            ),
            ("none", "<shelf><cd><title>x</title></cd></shelf>"),
        ];
        let mut registry = Registry::new();
        for (name, xml) in sources {
            let doc = whirlpool_xml::parse_document(xml).unwrap();
            let index = whirlpool_index::TagIndex::build(&doc);
            let path = dir.join(format!("{name}.wps"));
            whirlpool_store::save_snapshot(&doc, &index, &path).unwrap();
            registry.insert(DocState::peek(name, &path).unwrap());
        }
        registry
    }

    #[test]
    fn lazy_collection_prunes_before_attach_and_reports_residency() {
        let dir = std::env::temp_dir().join(format!("wp-serve-lazy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let config = ServeConfig {
            max_resident: 1,
            ..ServeConfig::default()
        };
        let handle = start(config, lazy_collection_registry(&dir)).unwrap();
        let addr = handle.addr();

        let (status, body) = post_query(
            addr,
            r#"{"collection": true, "query": "//book[./title and ./isbn]", "k": 2}"#,
        );
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("exact"));
        let shards = v.get("shards").expect("shards object");
        assert_eq!(shards.get("total").and_then(Json::as_u64), Some(3));
        let before = shards
            .get("pruned_before_attach")
            .and_then(Json::as_u64)
            .unwrap();
        assert!(
            before >= 1,
            "pruned lazy documents must never attach: {body}"
        );
        let Some(Json::Arr(answers)) = v.get("answers") else {
            panic!("no answers: {body}")
        };
        assert_eq!(answers.len(), 2, "{body}");
        for a in answers {
            assert_eq!(a.get("doc").and_then(Json::as_str), Some("rich"), "{body}");
            assert!(a.get("id").and_then(Json::as_str).is_some(), "{body}");
        }

        // A per-document query against a lazy doc attaches on demand.
        let (status, body) = post_query(
            addr,
            r#"{"doc": "sparse", "query": "//book[./blurb]", "k": 1}"#,
        );
        assert_eq!(status, 200, "{body}");

        // /metrics: residency counters and the rung history ring.
        let (status, body) = send(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        let m = Json::parse(&body).unwrap();
        let shards = m.get("shards").expect("shards counters");
        assert_eq!(shards.get("peeked").and_then(Json::as_u64), Some(3));
        assert!(shards.get("attached").and_then(Json::as_u64).unwrap() >= 1);
        assert!(
            shards
                .get("pruned_before_attach")
                .and_then(Json::as_u64)
                .unwrap()
                >= 1
        );
        assert!(
            shards.get("resident").and_then(Json::as_u64).unwrap() <= 1,
            "max_resident 1 must hold at quiescence: {body}"
        );
        let Some(Json::Arr(history)) = m.get("history") else {
            panic!("no history: {body}")
        };
        assert_eq!(history.len(), 2, "one sample per admitted query: {body}");
        assert!(history
            .iter()
            .all(|s| s.get("rung").and_then(Json::as_str).is_some()
                && s.get("pressure").and_then(Json::as_f64).is_some()));
        assert!(body.contains("\"backing\": \"lazy\""), "{body}");

        handle.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn collection_query_rejects_per_document_features() {
        let handle = start(ServeConfig::default(), collection_registry()).unwrap();
        let addr = handle.addr();
        let (status, body) = post_query(
            addr,
            r#"{"collection": true, "query": "//book", "fault": "server=1:fail@0"}"#,
        );
        assert_eq!(status, 400, "fault specs are per-document: {body}");
        let (status, body) = post_query(
            addr,
            r#"{"collection": true, "doc": "rich", "query": "//book"}"#,
        );
        assert_eq!(status, 400, "doc + collection conflict: {body}");
        handle.shutdown();
    }

    #[test]
    fn chaos_query_comes_back_certified() {
        let handle = start(ServeConfig::default(), test_registry()).unwrap();
        let (status, body) = post_query(
            handle.addr(),
            r#"{"query": "//book[./title and ./isbn]", "fault": "server=1:fail@0", "k": 2}"#,
        );
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("degraded"));
        assert_eq!(
            v.get("completeness").and_then(Json::as_str),
            Some("truncated")
        );
        assert!(
            v.get("score_bound").and_then(Json::as_f64).is_some(),
            "a truncated answer carries its certificate: {body}"
        );
        // The retry ladder ran (fail@0 re-fires each attempt) and the
        // response reports honestly.
        assert!(v.get("retries").and_then(Json::as_u64).unwrap_or(0) >= 1);
        handle.shutdown();
    }
}
