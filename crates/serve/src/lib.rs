#![deny(missing_docs)]

//! # whirlpool-serve — the long-lived query daemon
//!
//! Turns the library engines into a service that stays up under
//! overload: a dependency-free HTTP/1.1 JSON daemon
//! (`std::net::TcpListener`, a fixed accept/worker thread pool) that
//! parses and indexes its documents once at startup and serves
//! concurrent top-k queries behind a **robustness governor**:
//!
//! * **Admission control** ([`Admission`]) — a token bucket caps
//!   concurrent evaluations, and the selectivity-based cost estimate
//!   ([`QueryContext::cost_estimate`]) turns away queries whose
//!   predicted work exceeds the capacity remaining at the current
//!   pressure. Rejections are HTTP 429 with `Retry-After`.
//! * **A graceful-degradation ladder** ([`Rung`]) — rising pressure
//!   shrinks the per-request deadline and adds an op budget, sliding
//!   responses from exact through certified-truncated (the engines'
//!   anytime `Completeness` certificate rides along in the JSON)
//!   instead of queueing into a timeout collapse.
//! * **A per-request watchdog** ([`Watchdog`]) — a hard deadline past
//!   the ladder's own, or a client disconnect, trips the engine's
//!   [`CancelToken`](whirlpool_core::CancelToken) so the worker is
//!   reclaimed within one kernel interrupt span.
//! * **Fault-tolerant serving** — per-request chaos via the engines'
//!   `FaultPlan` spec, bounded retry-with-backoff on transient server
//!   faults, and `/healthz` + `/metrics` endpoints whose counters obey
//!   the conservation law `admitted = exact + degraded + timed_out`.
//!
//! ## Protocol
//!
//! ```text
//! GET  /healthz            liveness + load
//! GET  /metrics            daemon counters (JSON)
//! POST /query              {"doc": "name", "query": "//item[./a]", "k": 5,
//!                           "fault": "server=2:panic@100", "fault_seed": 7}
//! ```
//!
//! One request per connection (`Connection: close`): the protocol
//! surface stays small enough to audit, and the worker pool — not
//! connection keep-alive — is the concurrency mechanism.
//!
//! ## Quick start
//!
//! ```
//! use whirlpool_serve::{start, DocState, Registry, ServeConfig};
//! use std::io::{Read as _, Write as _};
//!
//! let doc = whirlpool_xml::parse_document(
//!     "<r><book><title>dune</title></book></r>").unwrap();
//! let mut registry = Registry::new();
//! registry.insert(DocState::new("lib", doc));
//! let handle = start(ServeConfig::default(), registry).unwrap();
//!
//! let body = r#"{"query": "//book[./title]"}"#;
//! let mut conn = std::net::TcpStream::connect(handle.addr()).unwrap();
//! write!(conn, "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
//!        body.len(), body).unwrap();
//! let mut response = String::new();
//! conn.read_to_string(&mut response).unwrap();
//! assert!(response.starts_with("HTTP/1.1 200"));
//! assert!(response.contains("\"outcome\": \"exact\""));
//! handle.shutdown();
//! ```
//!
//! [`QueryContext::cost_estimate`]: whirlpool_core::QueryContext::cost_estimate

mod error;
mod governor;
mod http;
mod json;
mod metrics;
mod server;
mod shared;

pub use error::{Outcome, RejectReason, ServeError};
pub use governor::{Admission, FireCause, Permit, Rung, Watchdog};
pub use json::{escape, Json, JsonError};
pub use metrics::{RungHistory, ServeMetrics, ServeMetricsSnapshot};
pub use server::{serve_blocking, start, ServeConfig, ServerHandle};
pub use shared::{DocAccess, DocState, Prepare, Registry, Residency, Shared};
