//! A minimal JSON value: parser and escaping, nothing else.
//!
//! The approved dependency set has no `serde_json`; request bodies are
//! small and fully controlled, so a ~hundred-line recursive-descent
//! parser is the honest cost of a JSON wire format. Responses are
//! emitted with `format!` plus [`escape`] — no serializer needed.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the value"));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {token:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", *c as char))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not worth the code for
                            // this wire format; reject them honestly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is a surrogate"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through: the source is a
                    // &str, so byte-wise copying of >= 0x80 is sound.
                    let start = self.pos;
                    let mut end = self.pos + 1;
                    if c >= 0x80 {
                        while matches!(self.bytes.get(end), Some(b) if b & 0xc0 == 0x80) {
                            end += 1;
                        }
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a key string"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            if !fields.iter().any(|(k, _)| *k == key) {
                fields.push((key, value));
            }
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escapes a string for embedding in emitted JSON (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\t' => o.push_str("\\t"),
            '\r' => o.push_str("\\r"),
            c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
            c => o.push(c),
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_query_request() {
        let v =
            Json::parse(r#"{"doc": "xmark", "query": "//item[./mailbox]", "k": 5, "fault": null}"#)
                .unwrap();
        assert_eq!(v.get("doc").and_then(Json::as_str), Some("xmark"));
        assert_eq!(
            v.get("query").and_then(Json::as_str),
            Some("//item[./mailbox]")
        );
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(5));
        assert_eq!(v.get("fault"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nesting_numbers_and_escapes() {
        let v = Json::parse(r#"[{"a": [1, -2.5, 3e2]}, "x\n\"y\u0041", true, false]"#).unwrap();
        let Json::Arr(items) = &v else {
            panic!("not an array")
        };
        assert_eq!(
            items[0].get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Num(300.0)
            ]))
        );
        assert_eq!(items[1].as_str(), Some("x\n\"yA"));
        assert_eq!(items[2], Json::Bool(true));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"\\q\"",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline2\t\"quoted\\path\" \u{1}";
        let wire = format!("\"{}\"", escape(original));
        assert_eq!(Json::parse(&wire).unwrap().as_str(), Some(original));
    }

    #[test]
    fn utf8_passes_through() {
        let v = Json::parse(r#""héllo — wörld""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo — wörld"));
    }
}
