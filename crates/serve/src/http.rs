//! Just enough HTTP/1.1: one request per connection, close after the
//! response. Dependency-free by design — the daemon's protocol surface
//! is three endpoints with small JSON bodies, and `std::net` plus a
//! hand parser keeps the whole transport auditable.

use crate::error::ServeError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum bytes of request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted `Content-Length`.
const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client per spec).
    pub method: String,
    /// The request target, e.g. `/query`.
    pub target: String,
    /// The body, when `Content-Length` said there was one.
    pub body: Vec<u8>,
}

/// Reads one request off the stream. Malformed or oversized input maps
/// to [`ServeError::BadRequest`]; transport failures to
/// [`ServeError::Io`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ServeError> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until the blank line: simple, and the head is tiny.
    // The body below is read in bulk.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(ServeError::BadRequest("request head too large".into()));
        }
        match stream.read(&mut byte)? {
            0 => {
                return Err(ServeError::BadRequest(
                    "connection closed mid-request".into(),
                ))
            }
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8(head)
        .map_err(|_| ServeError::BadRequest("request head is not utf-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_string(), t.to_string()),
        _ => {
            return Err(ServeError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ServeError::BadRequest("bad content-length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(ServeError::BadRequest("request body too large".into()));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method,
        target,
        body,
    })
}

/// Writes a JSON response and flushes. `extra_headers` is for
/// `Retry-After` and friends.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_text(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8]) -> Result<Request, ServeError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side);
        let _keep_alive = client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            round_trip(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/query");
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_request_line() {
        let err = round_trip(b"NONSENSE\r\n\r\n").unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let err =
            round_trip(b"POST /query HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n").unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
    }
}
